#include "service/tenant_session.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace service {

TenantSession::TenantSession(TenantId id, const TenantSpec &spec,
                             CacheLimits limits,
                             ShardedCodeCache &arena,
                             std::uint64_t eventsOverride,
                             std::uint64_t startEvents)
    : id_(id), spec_(spec), arena_(arena),
      prog_(testing::generateProgram(spec.program)),
      sys_(prog_, limits),
      exec_(prog_, spec.program.execSeed),
      remaining_(eventsOverride != 0 ? eventsOverride
                                     : spec.program.events)
{
    attachAlgorithm(sys_, spec_.algo, tenantSimOptions(spec_));
    sys_.armFaults(spec_.faults);
    if (startEvents != 0) {
        // Warm-restart replay position: the guest is deterministic,
        // so discarding the first `startEvents` events puts the
        // fresh executor exactly where the crashed session was. The
        // system stays cold — restart means a cold cache, which is
        // what makes "restarted == fresh solo run from the same
        // position" a meaningful oracle.
        RSEL_ASSERT(startEvents <= remaining_,
                    "restart position beyond the event budget");
        EventBatch scratch;
        std::uint64_t left = startEvents;
        while (left != 0) {
            const std::uint64_t got = exec_.fillBatch(
                scratch, static_cast<std::size_t>(
                             std::min<std::uint64_t>(left, 4096)));
            RSEL_ASSERT(got != 0,
                        "restart position beyond the guest's halt");
            left -= got;
        }
        remaining_ -= startEvents;
    }
    // Mirror structural cache mutations into the shared arena from
    // here on: the listener is attached before the first event, so
    // physical and logical accounting agree from region zero.
    sys_.setCacheListener(this);
    if (remaining_ == 0)
        done_ = true;
}

TenantSession::~TenantSession()
{
    // Detach before members die so no stale notification can fire
    // during destruction, then make sure the arena holds nothing of
    // this tenant (idempotent if teardown() already ran). No lock:
    // destruction is single-owner by the language, and TSA exempts
    // destructors for the same reason.
    sys_.setCacheListener(nullptr);
    if (!tornDown_) {
        arena_.releaseAll(id_);
        arena_.unregisterTenant(id_);
        tornDown_ = true;
    }
}

bool
TenantSession::runSlice(std::uint64_t maxEvents)
{
    // Sole-owner acquisition: a second thread slicing this session
    // concurrently is a scheduler bug and panics here, before any
    // slice state can interleave.
    MutexSoleLock lock(sessionMu_);
    RSEL_ASSERT(!finished_, "slice after finish()");
    if (done_)
        return false;
    if (stop_.load(std::memory_order_acquire)) {
        done_ = true;
        return false;
    }
    const std::uint64_t want =
        std::min<std::uint64_t>(maxEvents, remaining_);
    const std::uint64_t got =
        exec_.fillBatch(batch_, static_cast<std::size_t>(want));
    if (got == 0) {
        done_ = true; // guest halted before its budget
        return false;
    }
    sys_.onBatch(batch_);
    eventsRun_ += got;
    remaining_ -= got;
    if (remaining_ == 0 || got < want)
        done_ = true;
    return !done_;
}

SimResult
TenantSession::finish()
{
    MutexSoleLock lock(sessionMu_);
    RSEL_ASSERT(done_, "finish() before the session completed");
    RSEL_ASSERT(!finished_, "finish() may be called once");
    finished_ = true;
    SimResult result = sys_.finish();
    result.workload = spec_.name;
    return result;
}

void
TenantSession::teardown()
{
    MutexSoleLock lock(sessionMu_);
    if (tornDown_)
        return;
    tornDown_ = true;
    // PR 4's disruption machinery is the teardown path: every live
    // region leaves through a flush the selector observes, and the
    // listener mirrors each drop out of the arena.
    sys_.shutdownCache();
    // Belt and braces: a session torn down mid-flight must leave
    // zero physical residue, and the id dies with it so nothing it
    // cached can ever resurrect into another tenant.
    const std::uint64_t residue = arena_.releaseAll(id_);
    RSEL_ASSERT(residue == 0,
                "flush machinery left physical residue behind");
    arena_.unregisterTenant(id_);
}

void
TenantSession::applyCacheCapacity(std::uint64_t capacityBytes)
{
    MutexSoleLock lock(sessionMu_);
    RSEL_ASSERT(!finished_, "capacity change after finish()");
    sys_.setCacheCapacity(capacityBytes);
}

void
TenantSession::degradeToInterpretation()
{
    MutexSoleLock lock(sessionMu_);
    RSEL_ASSERT(!finished_, "degradation after finish()");
    sys_.degradeToInterpretation();
}

void
TenantSession::onRegionInserted(const Region &region,
                                std::uint64_t bytes)
{
    arena_.admit(id_, region.entryAddr(), bytes);
}

void
TenantSession::onRegionDropped(const Region &region,
                               std::uint64_t bytes,
                               CodeCache::DropReason reason)
{
    ReleaseReason mapped = ReleaseReason::Eviction;
    switch (reason) {
      case CodeCache::DropReason::Evicted:
        mapped = ReleaseReason::Eviction;
        break;
      case CodeCache::DropReason::Invalidated:
        mapped = ReleaseReason::Invalidation;
        break;
      case CodeCache::DropReason::Flushed:
        mapped = ReleaseReason::Flush;
        break;
    }
    arena_.release(id_, region.entryAddr(), bytes, mapped);
}

} // namespace service
} // namespace rsel
