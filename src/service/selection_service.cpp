#include "service/selection_service.hpp"

#include <chrono>
#include <functional>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>

#include "driver/thread_pool.hpp"
#include "program/executor.hpp"
#include "service/tenant_session.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace service {

namespace {

/** FNV-1a of a fingerprint, so 4096-tenant JSON stays small while
 *  still diffing across runs. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    std::ostringstream ss;
    ss << std::hex << std::setw(16) << std::setfill('0') << v;
    return ss.str();
}

const char *
policyName(CacheLimits::Policy policy)
{
    return policy == CacheLimits::Policy::Fifo ? "fifo" : "flush";
}

} // namespace

CacheLimits
tenantLimitsFor(const ServiceConfig &config, const TenantSpec &spec)
{
    if (config.cacheKb > 0) {
        // Bounded service: the arena's quota partition, computed by
        // the one shared routine so this can never drift from what
        // runService hands its sessions.
        ArenaConfig cfg;
        cfg.capacityBytes = config.cacheKb * 1024;
        cfg.policy = config.policy;
        return ShardedCodeCache::limitsFor(cfg,
                                           config.tenants.size());
    }
    // Unbounded service: each tenant honours its own spec's cache
    // bound, exactly as the differential oracle maps GenSpec to
    // SimOptions (policy and stub model at their defaults).
    CacheLimits limits;
    limits.capacityBytes = spec.program.cacheKb * 1024;
    return limits;
}

ServiceReport
runService(const ServiceConfig &config)
{
    if (config.tenants.empty())
        fatal("the service needs at least one tenant");
    const std::size_t n = config.tenants.size();

    ArenaConfig arenaCfg;
    arenaCfg.capacityBytes = config.cacheKb * 1024;
    arenaCfg.shardCount = config.shards;
    arenaCfg.policy = config.policy;
    ShardedCodeCache arena(arenaCfg);

    // The whole tenant set registers before the pool spins up:
    // registerTenant grows the account table under registry_, and
    // the lock-free admit/release path depends on that table never
    // growing once slice traffic starts (the accountCount_
    // publication covers construction, not concurrent growth).
    std::vector<std::unique_ptr<TenantSession>> sessions;
    sessions.reserve(n);
    for (const TenantSpec &spec : config.tenants) {
        const TenantId id = arena.registerTenant();
        sessions.push_back(std::make_unique<TenantSession>(
            id, spec, tenantLimitsFor(config, spec), arena,
            config.eventsOverride));
    }

    const std::uint64_t slice =
        config.sliceEvents != 0 ? config.sliceEvents
                                : defaultBatchSize;
    const std::size_t workers = config.jobs != 0
                                    ? config.jobs
                                    : ThreadPool::hardwareWorkers();

    const auto start = std::chrono::steady_clock::now();
    if (workers <= 1) {
        // Serial round-robin through the same slice path the pool
        // takes, so --jobs 1 exercises identical per-tenant code.
        bool pending = true;
        while (pending) {
            pending = false;
            for (auto &session : sessions)
                if (!session->done()) {
                    session->runSlice(slice);
                    pending = pending || !session->done();
                }
        }
    } else {
        // Slice resubmission: each task runs one slice of one
        // tenant and requeues itself while work remains, giving
        // FIFO round-robin interleaving without ever running one
        // session on two workers at once. That "never two workers"
        // property is the session capability (sessionMu_) the
        // analyze preset checks — and MutexSoleLock panics at
        // runtime if this scheduler ever breaks it.
        ThreadPool pool(workers);
        std::function<void(std::size_t)> step =
            [&](std::size_t i) {
                if (sessions[i]->runSlice(slice))
                    pool.submit([&step, i] { step(i); });
            };
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&step, i] { step(i); });
        pool.wait();
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    ServiceReport report;
    report.jobs = workers;
    report.quotaBytes = arena.tenantQuotaBytes(n);
    report.seconds = elapsed.count();
    report.tenants.reserve(n);
    for (auto &session : sessions) {
        TenantReport tr;
        tr.name = session->spec().name;
        tr.selector = algorithmName(session->spec().algo);
        tr.result = session->finish();
        tr.fingerprint = testing::resultFingerprint(tr.result);
        tr.cache = arena.tenantStats(session->tenantId());
        report.totalEvents += tr.result.events;
        report.totalInsts += tr.result.totalInsts;
        report.cachedInsts += tr.result.cachedInsts;
        report.tenants.push_back(std::move(tr));
    }
    // Arena snapshot while every tenant's residency is still live;
    // teardown below drains it to zero.
    report.arena = arena.stats();
    if (report.seconds > 0)
        report.eventsPerSec =
            static_cast<double>(report.totalEvents) / report.seconds;
    if (report.totalInsts > 0)
        report.globalHitRate =
            static_cast<double>(report.cachedInsts) /
            static_cast<double>(report.totalInsts);

    for (auto &session : sessions)
        session->teardown();
    RSEL_ASSERT(arena.stats().liveBytes == 0,
                "tenant teardown left live bytes in the arena");
    return report;
}

SimResult
soloTenantRun(const TenantSpec &spec, CacheLimits limits,
              std::uint64_t eventsOverride)
{
    // The reference leg the determinism contract compares against:
    // no arena, no listener, no slicing — one system, one batched
    // executor, the same spec and limits.
    const Program prog = testing::generateProgram(spec.program);
    DynOptSystem sys(prog, limits);
    attachAlgorithm(sys, spec.algo, tenantSimOptions(spec));
    sys.armFaults(spec.faults);
    Executor exec(prog, spec.program.execSeed);
    const std::uint64_t budget =
        eventsOverride != 0 ? eventsOverride : spec.program.events;
    exec.runBatched(budget, sys);
    SimResult result = sys.finish();
    result.workload = spec.name;
    return result;
}

std::string
verifyServiceDeterminism(const ServiceConfig &config)
{
    try {
        const ServiceReport report = runService(config);
        for (std::size_t i = 0; i < config.tenants.size(); ++i) {
            const TenantSpec &spec = config.tenants[i];
            const SimResult solo = soloTenantRun(
                spec, tenantLimitsFor(config, spec),
                config.eventsOverride);
            const std::string fpSolo =
                testing::resultFingerprint(solo);
            if (report.tenants[i].fingerprint != fpSolo)
                return "tenant " + spec.name + " (" +
                       algorithmName(spec.algo) +
                       "): service fingerprint diverged from the "
                       "solo single-tenant run";
        }
    } catch (const std::exception &e) {
        return std::string("service run failed: ") + e.what();
    }
    return "";
}

void
writeServiceReportJson(std::ostream &os, const ServiceConfig &config,
                       const ServiceReport &report)
{
    os << "{\n"
       << "  \"tool\": \"rselect-serve\",\n"
       << "  \"tenants\": " << report.tenants.size() << ",\n"
       << "  \"jobs\": " << report.jobs << ",\n"
       << "  \"cache_kb\": " << config.cacheKb << ",\n"
       << "  \"policy\": \"" << policyName(config.policy) << "\",\n"
       << "  \"shards\": " << report.arena.shardCount << ",\n"
       << "  \"slice_events\": " << config.sliceEvents << ",\n"
       << "  \"quota_bytes\": " << report.quotaBytes << ",\n"
       << "  \"seconds\": " << report.seconds << ",\n"
       << "  \"events_per_sec\": " << std::fixed
       << std::setprecision(0) << report.eventsPerSec
       << std::defaultfloat << ",\n"
       << "  \"total_events\": " << report.totalEvents << ",\n"
       << "  \"global_hit_rate\": " << report.globalHitRate << ",\n"
       << "  \"arena\": {\"high_water_bytes\": "
       << report.arena.highWaterBytes
       << ", \"admissions\": " << report.arena.admissions
       << ", \"releases\": " << report.arena.releases
       << ", \"shard_contention\": " << report.arena.shardContention
       << "},\n"
       << "  \"tenant_reports\": [\n";
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        const TenantReport &tr = report.tenants[i];
        os << "    {\"name\": \"" << tr.name << "\", \"selector\": \""
           << tr.selector << "\", \"events\": " << tr.result.events
           << ", \"hit_rate\": " << tr.result.hitRate()
           << ", \"regions\": " << tr.result.regionCount
           << ", \"evictions\": " << tr.cache.evictionReleases
           << ", \"invalidations\": " << tr.cache.invalidationReleases
           << ", \"flushes\": " << tr.cache.flushReleases
           << ", \"fingerprint_fnv1a\": \""
           << hex16(fnv1a(tr.fingerprint)) << "\"}"
           << (i + 1 < report.tenants.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace service
} // namespace rsel
