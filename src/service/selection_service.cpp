#include "service/selection_service.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <iomanip>
#include <memory>
#include <ostream>
#include <sstream>

#include "driver/thread_pool.hpp"
#include "program/executor.hpp"
#include "service/overload.hpp"
#include "service/tenant_session.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace service {

namespace {

/** FNV-1a of a fingerprint, so 4096-tenant JSON stays small while
 *  still diffing across runs. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
hex16(std::uint64_t v)
{
    std::ostringstream ss;
    ss << std::hex << std::setw(16) << std::setfill('0') << v;
    return ss.str();
}

const char *
policyName(CacheLimits::Policy policy)
{
    return policy == CacheLimits::Policy::Fifo ? "fifo" : "flush";
}

} // namespace

CacheLimits
tenantLimitsFor(const ServiceConfig &config, const TenantSpec &spec)
{
    if (config.cacheKb > 0) {
        // Bounded service: the arena's quota partition, computed by
        // the one shared routine so this can never drift from what
        // runService hands its sessions.
        ArenaConfig cfg;
        cfg.capacityBytes = config.cacheKb * 1024;
        cfg.policy = config.policy;
        return ShardedCodeCache::limitsFor(cfg,
                                           config.tenants.size());
    }
    // Unbounded service: each tenant honours its own spec's cache
    // bound, exactly as the differential oracle maps GenSpec to
    // SimOptions (policy and stub model at their defaults).
    CacheLimits limits;
    limits.capacityBytes = spec.program.cacheKb * 1024;
    return limits;
}

std::uint64_t
squeezedCapacityFor(const ServiceConfig &config,
                    const TenantSpec &spec, std::uint32_t factor)
{
    const CacheLimits base = tenantLimitsFor(config, spec);
    if (factor <= 1 || base.capacityBytes == 0)
        return base.capacityBytes; // no squeeze / unbounded: no-op
    if (config.cacheKb > 0) {
        // Bounded arena: the squeeze models `factor` times the
        // tenant population crowding in — computed through the one
        // shared partition routine, like everything quota-shaped.
        ArenaConfig cfg;
        cfg.capacityBytes = config.cacheKb * 1024;
        cfg.policy = config.policy;
        return ShardedCodeCache::limitsFor(
                   cfg, config.tenants.size() * factor)
            .capacityBytes;
    }
    // Unbounded arena, bounded tenant: shrink the tenant's own
    // bound. Never to zero — zero means "unbounded" to CodeCache.
    return std::max<std::uint64_t>(base.capacityBytes / factor, 1);
}

namespace {

/** One conductor per tenant, schedules and squeeze capacities
 *  derived the same way for the service and the solo chaos leg. */
std::unique_ptr<TenantConductor>
makeConductor(const ServiceConfig &config, std::size_t index,
              ShardedCodeCache &arena, std::uint64_t slice)
{
    const TenantSpec &spec = config.tenants[index];
    const ChaosSchedule schedule = config.chaos.scheduleFor(index);
    return std::make_unique<TenantConductor>(
        spec, tenantLimitsFor(config, spec),
        squeezedCapacityFor(config, spec,
                            schedule.squeeze ? schedule.squeezeFactor
                                             : 1),
        arena, slice, config.eventsOverride, schedule,
        config.overload);
}

} // namespace

ServiceReport
runService(const ServiceConfig &config)
{
    if (config.tenants.empty())
        fatal("the service needs at least one tenant");
    const std::size_t n = config.tenants.size();

    ArenaConfig arenaCfg;
    arenaCfg.capacityBytes = config.cacheKb * 1024;
    arenaCfg.shardCount = config.shards;
    arenaCfg.policy = config.policy;
    ShardedCodeCache arena(arenaCfg);

    const std::uint64_t slice =
        config.sliceEvents != 0 ? config.sliceEvents
                                : defaultBatchSize;
    const std::size_t workers = config.jobs != 0
                                    ? config.jobs
                                    : ThreadPool::hardwareWorkers();

    // The initial tenant set registers serially here (ids 0..n-1 in
    // tenant order); warm restarts register replacement ids
    // mid-traffic, which the arena's chunked account table makes
    // safe. Conductors are declared after the arena so their
    // destructors (which lift any pending quarantine) run first.
    std::vector<std::unique_ptr<TenantConductor>> conductors;
    conductors.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        conductors.push_back(makeConductor(config, i, arena, slice));

    const auto start = std::chrono::steady_clock::now();
    if (config.overload.maxInflight != 0) {
        // Bounded admission: round-based. Each round grants a slice
        // to the first maxInflight pending tenants in rotation
        // order and sheds the rest — a deterministic round-robin,
        // because the pending set is itself a per-tenant
        // deterministic function of the slice clock.
        const std::size_t maxInflight = config.overload.maxInflight;
        std::unique_ptr<ThreadPool> pool;
        if (workers > 1)
            pool = std::make_unique<ThreadPool>(workers);
        std::size_t cursor = 0;
        for (;;) {
            std::vector<std::size_t> grants;
            std::vector<std::size_t> denied;
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t i = (cursor + k) % n;
                if (conductors[i]->done())
                    continue;
                if (grants.size() < maxInflight)
                    grants.push_back(i);
                else
                    denied.push_back(i);
            }
            if (grants.empty())
                break;
            for (const std::size_t i : denied)
                conductors[i]->recordAdmissionShed();
            if (pool) {
                for (const std::size_t i : grants)
                    pool->submit(
                        [&conductors, i] { conductors[i]->offer(); });
                pool->wait(); // round barrier; the pool is reusable
            } else {
                for (const std::size_t i : grants)
                    conductors[i]->offer();
            }
            cursor = (cursor + 1) % n;
        }
    } else if (workers <= 1) {
        // Serial round-robin through the same offer path the pool
        // takes, so --jobs 1 exercises identical per-tenant code.
        bool pending = true;
        while (pending) {
            pending = false;
            for (auto &conductor : conductors)
                if (!conductor->done()) {
                    conductor->offer();
                    pending = pending || !conductor->done();
                }
        }
    } else {
        // Offer resubmission: each task offers one slice to one
        // tenant and requeues itself while work remains, giving
        // FIFO round-robin interleaving without ever running one
        // conductor on two workers at once. That "never two
        // workers" property is the session capability (sessionMu_)
        // the analyze preset checks — and MutexSoleLock panics at
        // runtime if this scheduler ever breaks it.
        ThreadPool pool(workers);
        std::function<void(std::size_t)> step =
            [&](std::size_t i) {
                conductors[i]->offer();
                if (!conductors[i]->done())
                    pool.submit([&step, i] { step(i); });
            };
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&step, i] { step(i); });
        pool.wait();
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;

    ServiceReport report;
    report.jobs = workers;
    report.quotaBytes = arena.tenantQuotaBytes(n);
    report.seconds = elapsed.count();
    report.tenants.reserve(n);
    for (auto &conductor : conductors) {
        TenantReport tr;
        tr.name = conductor->spec().name;
        tr.selector = algorithmName(conductor->spec().algo);
        tr.health = conductor->health();
        tr.chaos = conductor->counters();
        tr.aborted = tr.chaos.aborted;
        tr.cache = arena.tenantStats(conductor->tenantId());
        if (!tr.aborted) {
            tr.result = conductor->finish();
            tr.fingerprint = testing::resultFingerprint(tr.result);
            report.totalEvents += tr.result.events;
            report.totalInsts += tr.result.totalInsts;
            report.cachedInsts += tr.result.cachedInsts;
        }
        report.chaos.aborts += tr.aborted ? 1 : 0;
        report.chaos.restarts += tr.chaos.restarts;
        report.chaos.quarantines += tr.chaos.quarantinesTriggered;
        report.chaos.squeezes += tr.chaos.squeezesApplied;
        report.chaos.scheduledSlices += tr.chaos.scheduledSlices;
        report.chaos.shedSlices += tr.chaos.shedSlices;
        report.chaos.completedSlices += tr.chaos.completedSlices;
        report.chaos.blacklistedSlices +=
            tr.chaos.blacklistedSlices;
        if (tr.health != TenantHealth::Healthy)
            ++report.chaos.degradedTenants;
        if (tr.health == TenantHealth::Blacklisted)
            ++report.chaos.blacklistedTenants;
        report.tenants.push_back(std::move(tr));
    }
    // Arena snapshot while every surviving tenant's residency is
    // still live; teardown below drains it to zero.
    report.arena = arena.stats();
    if (report.seconds > 0)
        report.eventsPerSec =
            static_cast<double>(report.totalEvents) / report.seconds;
    if (report.totalInsts > 0)
        report.globalHitRate =
            static_cast<double>(report.cachedInsts) /
            static_cast<double>(report.totalInsts);

    for (auto &conductor : conductors)
        conductor->teardown();
    RSEL_ASSERT(arena.stats().liveBytes == 0,
                "tenant teardown left live bytes in the arena");
    return report;
}

SimResult
soloTenantRun(const TenantSpec &spec, CacheLimits limits,
              std::uint64_t eventsOverride,
              std::uint64_t skipEvents)
{
    // The reference leg the determinism contract compares against:
    // no arena, no listener, no slicing — one system, one batched
    // executor, the same spec and limits.
    const Program prog = testing::generateProgram(spec.program);
    DynOptSystem sys(prog, limits);
    attachAlgorithm(sys, spec.algo, tenantSimOptions(spec));
    sys.armFaults(spec.faults);
    Executor exec(prog, spec.program.execSeed);
    std::uint64_t budget =
        eventsOverride != 0 ? eventsOverride : spec.program.events;
    if (skipEvents != 0) {
        // Warm-restart oracle: fast-forward the guest past the
        // events the crashed incarnation consumed, without the
        // system ever seeing them — the batched equivalence proof
        // makes this independent of scratch-batch sizing.
        RSEL_ASSERT(skipEvents <= budget,
                    "skip position beyond the event budget");
        EventBatch scratch;
        std::uint64_t left = skipEvents;
        while (left != 0) {
            const std::uint64_t got = exec.fillBatch(
                scratch, static_cast<std::size_t>(
                             std::min<std::uint64_t>(left, 4096)));
            RSEL_ASSERT(got != 0,
                        "skip position beyond the guest's halt");
            left -= got;
        }
        budget -= skipEvents;
    }
    exec.runBatched(budget, sys);
    SimResult result = sys.finish();
    result.workload = spec.name;
    return result;
}

SimResult
soloTenantChaosRun(const ServiceConfig &config,
                   std::size_t tenantIndex)
{
    RSEL_ASSERT(tenantIndex < config.tenants.size(),
                "tenant index out of range");
    // A private arena with the service's geometry: quarantine and
    // physical accounting behave identically, and the conductor is
    // the very class the service runs — oracle and service share
    // one slice loop by construction.
    ArenaConfig arenaCfg;
    arenaCfg.capacityBytes = config.cacheKb * 1024;
    arenaCfg.shardCount = config.shards;
    arenaCfg.policy = config.policy;
    ShardedCodeCache arena(arenaCfg);
    const std::uint64_t slice =
        config.sliceEvents != 0 ? config.sliceEvents
                                : defaultBatchSize;
    std::unique_ptr<TenantConductor> conductor =
        makeConductor(config, tenantIndex, arena, slice);
    while (!conductor->done())
        conductor->offer();
    // The trajectory is deterministic: a tenant that survived the
    // service run (the only kind routed here) survives this replay
    // too, even if its schedule carries a never-reached abort.
    RSEL_ASSERT(!conductor->counters().aborted,
                "solo chaos leg of an aborted tenant");
    SimResult result = conductor->finish();
    conductor->teardown();
    return result;
}

std::string
verifyServiceDeterminism(const ServiceConfig &config)
{
    try {
        const ServiceReport report = runService(config);
        for (std::size_t i = 0; i < config.tenants.size(); ++i) {
            const TenantSpec &spec = config.tenants[i];
            const SimResult solo = soloTenantRun(
                spec, tenantLimitsFor(config, spec),
                config.eventsOverride);
            const std::string fpSolo =
                testing::resultFingerprint(solo);
            if (report.tenants[i].fingerprint != fpSolo)
                return "tenant " + spec.name + " (" +
                       algorithmName(spec.algo) +
                       "): service fingerprint diverged from the "
                       "solo single-tenant run";
        }
    } catch (const std::exception &e) {
        return std::string("service run failed: ") + e.what();
    }
    return "";
}

std::string
verifyServiceChaos(const ServiceConfig &config)
{
    try {
        const ServiceReport report = runService(config);

        // Global accounting identity first: cheap, and a violation
        // here localizes the bug to the arena, not a tenant.
        const ArenaStats &a = report.arena;
        if (a.admissions != a.releases + a.liveEntries)
            return "arena accounting identity violated: " +
                   std::to_string(a.admissions) +
                   " admissions != " + std::to_string(a.releases) +
                   " releases + " + std::to_string(a.liveEntries) +
                   " live entries";

        for (std::size_t i = 0; i < config.tenants.size(); ++i) {
            const TenantSpec &spec = config.tenants[i];
            const TenantReport &tr = report.tenants[i];
            const ConductorCounters &cc = tr.chaos;

            if (cc.scheduledSlices != cc.shedSlices +
                                          cc.completedSlices +
                                          cc.blacklistedSlices)
                return "tenant " + spec.name +
                       ": slice accounting identity violated "
                       "(scheduled != shed + completed + "
                       "blacklisted)";
            const TenantCacheStats &cs = tr.cache;
            if (cs.admissions != cs.evictionReleases +
                                     cs.invalidationReleases +
                                     cs.flushReleases +
                                     cs.liveEntries)
                return "tenant " + spec.name +
                       ": cache accounting identity violated "
                       "(admissions != releases + live entries)";

            const ChaosSchedule schedule =
                config.chaos.scheduleFor(i);
            if (tr.aborted) {
                if (!schedule.abort)
                    return "tenant " + spec.name +
                           ": aborted without an abort in its "
                           "chaos schedule";
                if (cs.liveBytes != 0 || cs.liveEntries != 0)
                    return "tenant " + spec.name +
                           ": abort left physical residue in the "
                           "arena";
                continue;
            }

            // The reference leg depends on what actually touched
            // the tenant semantically:
            //  - a crash discards everything before the restart, so
            //    the oracle is a fresh solo run from the replay
            //    position (chaos- and overload-free, like the
            //    replacement session);
            //  - an applied squeeze or overload degradation changes
            //    logical decisions, so the oracle is the
            //    conductor-driven solo chaos leg;
            //  - anything else (quarantine included — it is purely
            //    physical) must match the plain chaos-free solo
            //    run: the isolation half of the contract.
            std::string fpRef;
            const char *leg = "";
            if (cc.restarts != 0) {
                leg = "fresh solo run from the restart position";
                fpRef = testing::resultFingerprint(soloTenantRun(
                    spec, tenantLimitsFor(config, spec),
                    config.eventsOverride, cc.restartFromEvent));
            } else if (cc.squeezesApplied != 0 ||
                       tr.health == TenantHealth::Blacklisted ||
                       cc.budgetExhausted) {
                leg = "conductor-driven solo chaos run";
                fpRef = testing::resultFingerprint(
                    soloTenantChaosRun(config, i));
            } else {
                leg = "chaos-free solo run";
                fpRef = testing::resultFingerprint(soloTenantRun(
                    spec, tenantLimitsFor(config, spec),
                    config.eventsOverride));
            }
            if (tr.fingerprint != fpRef)
                return "tenant " + spec.name + " (" +
                       algorithmName(spec.algo) +
                       "): service fingerprint diverged from the " +
                       leg;
        }
    } catch (const std::exception &e) {
        return std::string("service chaos run failed: ") + e.what();
    }
    return "";
}

void
writeServiceReportJson(std::ostream &os, const ServiceConfig &config,
                       const ServiceReport &report)
{
    os << "{\n"
       << "  \"tool\": \"rselect-serve\",\n"
       << "  \"tenants\": " << report.tenants.size() << ",\n"
       << "  \"jobs\": " << report.jobs << ",\n"
       << "  \"cache_kb\": " << config.cacheKb << ",\n"
       << "  \"policy\": \"" << policyName(config.policy) << "\",\n"
       << "  \"shards\": " << report.arena.shardCount << ",\n"
       << "  \"slice_events\": " << config.sliceEvents << ",\n"
       << "  \"quota_bytes\": " << report.quotaBytes << ",\n"
       << "  \"seconds\": " << report.seconds << ",\n"
       << "  \"events_per_sec\": " << std::fixed
       << std::setprecision(0) << report.eventsPerSec
       << std::defaultfloat << ",\n"
       << "  \"total_events\": " << report.totalEvents << ",\n"
       << "  \"global_hit_rate\": " << report.globalHitRate << ",\n"
       << "  \"arena\": {\"high_water_bytes\": "
       << report.arena.highWaterBytes
       << ", \"admissions\": " << report.arena.admissions
       << ", \"releases\": " << report.arena.releases
       << ", \"shard_contention\": " << report.arena.shardContention
       << ", \"live_entries\": " << report.arena.liveEntries
       << ", \"quarantines\": " << report.arena.quarantines
       << ", \"quarantined_admissions\": "
       << report.arena.quarantinedAdmissions << "},\n"
       << "  \"chaos\": {\"plan\": \"" << config.chaos.toString()
       << "\", \"armed\": "
       << (config.chaos.armed() ? "true" : "false")
       << ", \"aborts\": " << report.chaos.aborts
       << ", \"restarts\": " << report.chaos.restarts
       << ", \"quarantines\": " << report.chaos.quarantines
       << ", \"squeezes\": " << report.chaos.squeezes << "},\n"
       << "  \"overload\": {\"max_inflight\": "
       << config.overload.maxInflight
       << ", \"slice_budget\": " << config.overload.sliceBudget
       << ", \"health_enabled\": "
       << (config.overload.healthEnabled ? "true" : "false")
       << ", \"scheduled_slices\": " << report.chaos.scheduledSlices
       << ", \"shed_slices\": " << report.chaos.shedSlices
       << ", \"completed_slices\": " << report.chaos.completedSlices
       << ", \"blacklisted_slices\": "
       << report.chaos.blacklistedSlices
       << ", \"degraded_tenants\": " << report.chaos.degradedTenants
       << ", \"blacklisted_tenants\": "
       << report.chaos.blacklistedTenants << "},\n"
       << "  \"tenant_reports\": [\n";
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        const TenantReport &tr = report.tenants[i];
        os << "    {\"name\": \"" << tr.name << "\", \"selector\": \""
           << tr.selector << "\", \"events\": " << tr.result.events
           << ", \"hit_rate\": " << tr.result.hitRate()
           << ", \"regions\": " << tr.result.regionCount
           << ", \"evictions\": " << tr.cache.evictionReleases
           << ", \"invalidations\": " << tr.cache.invalidationReleases
           << ", \"flushes\": " << tr.cache.flushReleases
           << ", \"fingerprint_fnv1a\": \""
           << hex16(fnv1a(tr.fingerprint))
           << "\", \"health\": \"" << healthName(tr.health)
           << "\", \"scheduled_slices\": " << tr.chaos.scheduledSlices
           << ", \"shed_slices\": " << tr.chaos.shedSlices
           << ", \"restarts\": " << tr.chaos.restarts
           << ", \"aborted\": " << (tr.aborted ? "true" : "false")
           << "}" << (i + 1 < report.tenants.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace service
} // namespace rsel
