/**
 * @file
 * Wiggins/Redstone-style trace selection (paper Section 5; Deaver,
 * Gorton & Rubin).
 *
 * Compaq's Wiggins/Redstone identified trace beginnings by
 * *periodically sampling the program counter* rather than counting
 * branch executions, then instrumented from the sampled start to
 * determine the most frequent target of each selected branch. This
 * selector models that: every `samplePeriod`-th interpreted block is
 * a PC sample; a block accumulating `hotSamples` samples becomes a
 * trace start, and the trace follows the accumulated edge profile
 * (shared with the BOA selector).
 *
 * As the paper notes for the whole family, sampling identifies hot
 * starts with very low overhead but the selected region remains a
 * single path — separation and duplication are not addressed.
 */

#ifndef RSEL_SELECTION_WRS_SELECTOR_HPP
#define RSEL_SELECTION_WRS_SELECTOR_HPP

#include <unordered_map>

#include "selection/path_profile.hpp"
#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Configuration of a WrsSelector. */
struct WrsConfig
{
    /** One PC sample every this many interpreted blocks. */
    std::uint32_t samplePeriod = 31;
    /** Samples a block needs before a trace starts there. */
    std::uint32_t hotSamples = 3;
    /** Maximum instructions per trace. */
    std::uint32_t maxTraceInsts = 1024;
};

/** Sampling-based trace selection in the Wiggins/Redstone style. */
class WrsSelector : public RegionSelector
{
  public:
    WrsSelector(const Program &prog, const CodeCache &cache,
                WrsConfig cfg = {});

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &event) override;

    void onCacheDisruption(CacheDisruption kind) override
    {
        // PC samples and edge profiles describe the program and
        // survive invalidations/flushes; only the in-flight
        // attribution chain breaks. A reset forgets everything (the
        // sampling clock tick_ keeps running — it is a clock, not
        // profile state).
        if (kind == CacheDisruption::Reset) {
            profile_.reset();
            samples_.clear();
        } else {
            profile_.breakChain();
        }
    }

    std::size_t maxLiveCounters() const override { return maxCounters_; }

    std::string name() const override { return "WRS"; }

  private:
    const Program &prog_;
    const CodeCache &cache_;
    WrsConfig cfg_;

    PathProfile profile_;
    std::unordered_map<Addr, std::uint32_t> samples_;
    std::size_t maxCounters_ = 0;
    std::uint64_t tick_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_WRS_SELECTOR_HPP
