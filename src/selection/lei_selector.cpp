#include "selection/lei_selector.hpp"

#include <algorithm>
#include <unordered_set>

#include "program/program.hpp"
#include "runtime/code_cache.hpp"
#include "support/error.hpp"

namespace rsel {

LeiSelector::LeiSelector(const Program &prog, const CodeCache &cache,
                         LeiConfig cfg)
    : prog_(prog), cache_(cache), cfg_(cfg),
      buffer_(cfg.bufferCapacity)
{
    RSEL_ASSERT(cfg_.hotThreshold >= 1, "hot threshold must be >= 1");
    RSEL_ASSERT(cfg_.maxTraceInsts >= 1, "size limit must be >= 1");
    if (cfg_.combine) {
        RSEL_ASSERT(cfg_.hotThreshold > cfg_.profWindow,
                    "combining needs hotThreshold > profWindow so the "
                    "start threshold stays positive");
        store_ = std::make_unique<ObservedTraceStore>(cfg_.profWindow,
                                                      cfg_.minOccur);
    }
}

std::string
LeiSelector::name() const
{
    return cfg_.combine ? "LEI+comb" : "LEI";
}

std::uint64_t
LeiSelector::peakObservedTraceBytes() const
{
    return store_ ? store_->peakBytes() : 0;
}

std::uint64_t
LeiSelector::markSweepRegions() const
{
    return store_ ? store_->sweepRegions() : 0;
}

std::uint64_t
LeiSelector::markSweepMultiIterRegions() const
{
    return store_ ? store_->multiIterRegions() : 0;
}

std::vector<const BasicBlock *>
LeiSelector::formTrace(Addr start, std::uint64_t oldSeq)
{
    std::vector<const BasicBlock *> path;
    std::unordered_set<BlockId> member;
    std::uint64_t instCount = 0;
    Addr prev = start;

    for (std::uint64_t seq = oldSeq + 1; seq <= buffer_.lastSeq();
         ++seq) {
        const HistoryBuffer::Entry &branch = buffer_.at(seq);

        // Append the fall-through run from `prev` up to and
        // including the block that ends with this recorded branch.
        const BasicBlock *b = prog_.blockAtAddr(prev);
        while (b != nullptr) {
            // Stop if the next instruction begins an existing
            // region (avoids duplicating nested cycles, even on a
            // fall-through path — Section 3.1).
            if (cache_.lookup(b->startAddr()) != nullptr)
                return path;
            if (member.count(b->id()) != 0)
                return path; // re-entered the path: stop cleanly
            // The entry block is always included, even when it alone
            // exceeds the size limit.
            if (!path.empty() &&
                instCount + b->instCount() > cfg_.maxTraceInsts)
                return path;
            path.push_back(b);
            member.insert(b->id());
            instCount += b->instCount();
            if (b->lastInstAddr() == branch.src)
                break;
            // Consistency guard: between two recorded taken branches
            // execution fell through, so only fall-through-capable
            // blocks may appear. Hitting an unconditional terminator
            // means the history is not contiguous here — branches
            // executed inside the code cache are never recorded — so
            // the trace ends with the well-formed prefix.
            if (!canFallThrough(b->terminator()))
                return path;
            b = prog_.blockAtAddr(b->fallThroughAddr());
        }
        if (b == nullptr) {
            // The buffer window no longer describes a contiguous
            // path (possible after heavy truncation); stop with
            // what was reconstructed.
            return path;
        }

        // Stop once the recorded branch completes a cycle.
        const BasicBlock *tgtBlock = prog_.blockAtAddr(branch.tgt);
        if (tgtBlock != nullptr && member.count(tgtBlock->id()) != 0)
            break;
        prev = branch.tgt;
    }
    return path;
}

void
LeiSelector::onCacheDisruption(CacheDisruption kind)
{
    // The history buffer describes paths that may run through
    // dropped translations (fromCacheExit anchors in particular);
    // any disruption clears it, and the stored observations with it.
    // A full reset also forgets cycle hotness.
    buffer_.clear();
    if (store_)
        store_->clear();
    if (kind == CacheDisruption::Reset)
        counters_.clear();
}

std::optional<RegionSpec>
LeiSelector::onInterpreted(const SelectorEvent &ev)
{
    // Only interpreted taken branches enter the history buffer
    // (Figure 5 is invoked per interpreted taken branch).
    if (!ev.viaTaken)
        return std::nullopt;

    const Addr tgt = ev.block->startAddr();
    const Addr src = ev.branchAddr;

    // Figure 5 line 6: look for a previous occurrence of the target
    // before recording the new one.
    const std::optional<std::uint64_t> oldOpt = buffer_.find(tgt);
    bool oldFromCacheExit = false;
    if (oldOpt)
        oldFromCacheExit = buffer_.at(*oldOpt).fromCacheExit;

    HistoryBuffer::Entry entry;
    entry.src = src;
    entry.tgt = tgt;
    entry.fromCacheExit = ev.fromCacheExit;
    const std::uint64_t seq = buffer_.insert(entry);
    buffer_.setHashLocation(tgt, seq); // lines 8 / 17

    if (!oldOpt)
        return std::nullopt;
    const std::uint64_t oldSeq = *oldOpt;
    // The insert may have evicted the old occurrence itself. The
    // cycle body (the entries after `old`) can still be complete —
    // it is exactly when even the first body entry was evicted that
    // the cycle outgrew the buffer and cannot be reconstructed.
    const bool oldEvicted = !buffer_.inWindow(oldSeq);
    if (oldEvicted && !buffer_.inWindow(oldSeq + 1))
        return std::nullopt;

    // Figure 5 line 9: a trace may begin only at a loop header
    // (cycle closed by a backward branch) or where the code cache
    // was exited.
    const bool backward = tgt <= src;
    if (!backward && !oldFromCacheExit)
        return std::nullopt;

    std::uint32_t &count = counters_[tgt];
    ++count;
    maxCounters_ = std::max(maxCounters_, counters_.size());

    const std::uint32_t trigger =
        cfg_.combine ? cfg_.hotThreshold - cfg_.profWindow
                     : cfg_.hotThreshold;
    if (count < trigger)
        return std::nullopt;

    std::vector<const BasicBlock *> path = formTrace(tgt, oldSeq);

    // Figure 5 line 13: drop the formed cycle from the buffer and
    // re-point the hash at the surviving occurrence. When the old
    // occurrence was evicted there is nothing to anchor to, so the
    // whole buffer goes.
    if (oldEvicted) {
        buffer_.clear();
    } else {
        buffer_.truncateAfter(oldSeq);
        buffer_.setHashLocation(tgt, oldSeq);
    }

    RSEL_ASSERT(!path.empty(),
                "a triggered cycle must yield at least its entry");

    if (!cfg_.combine) {
        counters_.erase(tgt); // line 14: recycle the counter
        RegionSpec spec;
        spec.kind = Region::Kind::Trace;
        spec.blocks = std::move(path);
        return spec;
    }

    // Combination: store this cycle as one observed trace; combine
    // once the profiling window is full.
    if (store_->observedCount(tgt) >= cfg_.profWindow)
        return std::nullopt;
    const bool windowFull = store_->store(tgt, path);
    if (!windowFull)
        return std::nullopt;
    counters_.erase(tgt);
    return store_->combine(prog_, tgt);
}

} // namespace rsel
