#include "selection/region_cfg.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rsel {

RegionCfg::RegionCfg(const BasicBlock *entry)
    : entry_(entry)
{
    RSEL_ASSERT(entry != nullptr, "region CFG needs an entry block");
    nodeFor(entry);
}

std::size_t
RegionCfg::nodeFor(const BasicBlock *b)
{
    auto it = index_.find(b->id());
    if (it != index_.end()) {
        // The index is keyed by block id; two *distinct* block
        // objects sharing an id (blocks of different Program copies,
        // or a future per-function id scheme) would silently alias
        // into one node and corrupt the combined region. Insist on
        // object identity.
        RSEL_ASSERT(nodes_[it->second].block == b,
                    "block-id aliasing: two distinct blocks share an "
                    "id in one region CFG");
        return it->second;
    }
    const std::size_t idx = nodes_.size();
    Node node;
    node.block = b;
    nodes_.push_back(std::move(node));
    index_.emplace(b->id(), idx);
    return idx;
}

void
RegionCfg::addTrace(const std::vector<const BasicBlock *> &trace)
{
    RSEL_ASSERT(!trace.empty(), "cannot add an empty trace");
    // Pointer identity, not id equality: an equal id on a different
    // block object would be exactly the aliasing nodeFor() rejects.
    RSEL_ASSERT(trace.front() == entry_,
                "observed traces must share the region entrance");

    ++traces_;
    std::unordered_set<BlockId> seenThisTrace;
    std::size_t prev = nodeFor(trace.front());
    if (seenThisTrace.insert(trace.front()->id()).second)
        ++nodes_[prev].occurrences;

    for (std::size_t i = 1; i < trace.size(); ++i) {
        const std::size_t cur = nodeFor(trace[i]);
        if (seenThisTrace.insert(trace[i]->id()).second)
            ++nodes_[cur].occurrences;

        auto &succs = nodes_[prev].succs;
        if (std::find(succs.begin(), succs.end(), cur) == succs.end()) {
            succs.push_back(cur);
            ++edges_;
        }
        prev = cur;
    }
}

std::uint32_t
RegionCfg::occurrences(BlockId id) const
{
    auto it = index_.find(id);
    return it == index_.end() ? 0 : nodes_[it->second].occurrences;
}

void
RegionCfg::markFrequent(std::uint32_t tmin)
{
    for (Node &n : nodes_)
        if (n.occurrences >= tmin)
            n.marked = true;
}

std::vector<std::size_t>
RegionCfg::postOrder() const
{
    std::vector<std::size_t> order;
    order.reserve(nodes_.size());
    std::vector<std::uint8_t> state(nodes_.size(), 0); // 0 new, 1 open
    // Iterative DFS with an explicit stack of (node, next-child).
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(0, 0); // entry is node 0 by construction
    state[0] = 1;
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < nodes_[node].succs.size()) {
            const std::size_t succ = nodes_[node].succs[child++];
            if (state[succ] == 0) {
                state[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }
    return order;
}

std::uint32_t
RegionCfg::markRejoiningPaths()
{
    // Iterative backward dataflow (paper Figure 15): a block is
    // marked when any successor is marked. Visiting in post order
    // means successors are usually processed first, so one sweep
    // almost always suffices; back edges can force another.
    const std::vector<std::size_t> order = postOrder();
    std::uint32_t sweepsThatMarked = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t node : order) {
            Node &n = nodes_[node];
            if (n.marked)
                continue;
            for (std::size_t succ : n.succs) {
                if (nodes_[succ].marked) {
                    n.marked = true;
                    changed = true;
                    break;
                }
            }
        }
        if (changed)
            ++sweepsThatMarked;
    }
    return sweepsThatMarked;
}

std::vector<const BasicBlock *>
RegionCfg::markedBlocks() const
{
    RSEL_ASSERT(nodes_.front().marked,
                "entry must be marked before extracting the region");
    std::vector<const BasicBlock *> blocks;
    blocks.push_back(nodes_.front().block);
    for (std::size_t i = 1; i < nodes_.size(); ++i)
        if (nodes_[i].marked)
            blocks.push_back(nodes_[i].block);
    return blocks;
}

bool
RegionCfg::isMarked(BlockId id) const
{
    auto it = index_.find(id);
    return it != index_.end() && nodes_[it->second].marked;
}

} // namespace rsel
