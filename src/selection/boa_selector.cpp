#include "selection/boa_selector.hpp"

#include <algorithm>

#include "program/program.hpp"
#include "runtime/code_cache.hpp"
#include "support/error.hpp"

namespace rsel {

BoaSelector::BoaSelector(const Program &prog, const CodeCache &cache,
                         BoaConfig cfg)
    : prog_(prog), cache_(cache), cfg_(cfg)
{
    RSEL_ASSERT(cfg_.hotThreshold >= 1, "hot threshold must be >= 1");
    RSEL_ASSERT(cfg_.maxTraceInsts >= 1, "size limit must be >= 1");
}

std::optional<RegionSpec>
BoaSelector::onInterpreted(const SelectorEvent &ev)
{
    profile_.record(ev);

    // Entry-point eligibility mirrors the framework's (Section 2.1):
    // targets of taken backward branches and of code-cache exits.
    if (!ev.viaTaken)
        return std::nullopt;
    const Addr tgt = ev.block->startAddr();
    const bool backward = tgt <= ev.branchAddr;
    if (!backward && !ev.fromCacheExit)
        return std::nullopt;

    std::uint32_t &count = counters_[tgt];
    ++count;
    maxCounters_ = std::max(maxCounters_, counters_.size());
    if (count < cfg_.hotThreshold)
        return std::nullopt;

    counters_.erase(tgt);
    std::vector<const BasicBlock *> path = formMostLikelyPath(
        prog_, cache_, profile_, *ev.block, cfg_.maxTraceInsts);
    RSEL_ASSERT(!path.empty(), "BOA trace must contain its entry");

    RegionSpec spec;
    spec.kind = Region::Kind::Trace;
    spec.blocks = std::move(path);
    return spec;
}

} // namespace rsel
