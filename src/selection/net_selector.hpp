/**
 * @file
 * Next-Executing Tail (NET) trace selection, after Duesterwald &
 * Bala, as described in Section 2.1 of the paper — plus the optional
 * trace-combination extension of Section 4 (Figure 13).
 *
 * Profiling: a counter is associated with the target of every
 * interpreted taken backward branch and every exit from the code
 * cache. When a counter reaches the hot threshold (published value:
 * 50), the next-executing path from the target is recorded as the
 * trace: recording extends across any forward control transfer
 * (calls and returns included) and stops after a taken backward
 * branch, before the start of an existing region, or at the size
 * limit.
 *
 * With combination enabled, the counter triggers at
 * `hotThreshold - profWindow` executions; each subsequent trigger
 * records an *observed* trace, stored compactly, and after
 * `profWindow` observations the traces are combined into one
 * multi-path region (total interpreted executions before region
 * creation thus match plain NET, per Section 4.3).
 */

#ifndef RSEL_SELECTION_NET_SELECTOR_HPP
#define RSEL_SELECTION_NET_SELECTOR_HPP

#include <memory>
#include <unordered_map>

#include "selection/observed_store.hpp"
#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Configuration of a NetSelector. */
struct NetConfig
{
    /** Hot threshold for starting a trace (paper standard: 50). */
    std::uint32_t hotThreshold = 50;
    /**
     * Separate, lower threshold for code-cache-exit targets; 0 uses
     * hotThreshold for both. A non-zero value gives the Mojo variant
     * the paper describes in Section 5: "one threshold for
     * backward-branch targets and a lower threshold for trace
     * exits", which reduces the delay before a related trace is
     * selected (and hence the separation between related traces)
     * without allowing them to be optimized together.
     */
    std::uint32_t exitThreshold = 0;
    /** Maximum instructions per trace (Dynamo-style size limit). */
    std::uint32_t maxTraceInsts = 1024;
    /** Enable trace combination (Section 4). */
    bool combine = false;
    /** T_prof: observed traces per entrance when combining. */
    std::uint32_t profWindow = 15;
    /** T_min: occurrence threshold for keeping a block. */
    std::uint32_t minOccur = 5;

    /** Mojo preset: NET with a lower trace-exit threshold. */
    static NetConfig
    mojo(std::uint32_t backward = 50, std::uint32_t exit = 25)
    {
        NetConfig cfg;
        cfg.hotThreshold = backward;
        cfg.exitThreshold = exit;
        return cfg;
    }
};

/** NET trace selection, optionally with trace combination. */
class NetSelector : public RegionSelector
{
  public:
    /**
     * @param prog  program being executed (for block lookup).
     * @param cache code cache (read-only; consulted for stop rules).
     * @param cfg   thresholds and mode.
     */
    NetSelector(const Program &prog, const CodeCache &cache,
                NetConfig cfg = {});

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &event) override;

    std::optional<RegionSpec>
    onCacheEnter(const BasicBlock &entry) override;

    void onCacheDisruption(CacheDisruption kind) override;

    std::size_t maxLiveCounters() const override { return maxCounters_; }

    std::uint64_t peakObservedTraceBytes() const override;
    std::uint64_t markSweepRegions() const override;
    std::uint64_t markSweepMultiIterRegions() const override;

    std::string name() const override;

    /** Live counters right now (for tests). */
    std::size_t liveCounters() const { return counters_.size(); }

    /** True while a trace is being recorded (for tests). */
    bool recording() const { return recording_; }

  private:
    /** A hotness counter with its effective trigger threshold. */
    struct Counter
    {
        std::uint32_t count = 0;
        std::uint32_t trigger = 0;
    };

    /** Count this event toward hotness; maybe start recording. */
    void profile(const SelectorEvent &event);

    /** Begin recording the next-executing path at `head`. */
    void startRecording(const BasicBlock &head);

    /** Close the recording; emit a trace or store an observation. */
    std::optional<RegionSpec> finalizeRecording();

    /** The execution count at which recording starts. */
    std::uint32_t triggerThreshold(bool fromCacheExit) const;

    const Program &prog_;
    const CodeCache &cache_;
    NetConfig cfg_;

    std::unordered_map<Addr, Counter> counters_;
    std::size_t maxCounters_ = 0;

    bool recording_ = false;
    std::vector<const BasicBlock *> recordPath_;
    std::uint64_t recordInsts_ = 0;

    std::unique_ptr<ObservedTraceStore> store_;
};

} // namespace rsel

#endif // RSEL_SELECTION_NET_SELECTOR_HPP
