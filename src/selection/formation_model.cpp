#include "selection/formation_model.hpp"

namespace rsel {

const std::vector<FormationModel> &
allFormationModels()
{
    static const std::vector<FormationModel> models = [] {
        std::vector<FormationModel> m;
        const auto add = [&m](const char *name,
                              FormationModel::Entrance entrance,
                              bool tracesOnly, double discount) {
            FormationModel fm;
            fm.selector = name;
            fm.entrance = entrance;
            fm.tracesOnly = tracesOnly;
            fm.stubDiscount = discount;
            m.push_back(std::move(fm));
        };
        using E = FormationModel::Entrance;
        add("NET", E::NeedsPredecessor, true, 1.0);
        add("LEI", E::OnCycle, true, 1.0);
        add("NET+comb", E::NeedsPredecessor, false, 0.7);
        add("LEI+comb", E::OnCycle, false, 0.7);
        add("Mojo", E::NeedsPredecessor, true, 1.0);
        add("BOA", E::AnyReachable, true, 1.0);
        add("WRS", E::AnyReachable, true, 1.0);
        return m;
    }();
    return models;
}

const FormationModel *
findFormationModel(const std::string &selector)
{
    for (const FormationModel &m : allFormationModels())
        if (m.selector == selector)
            return &m;
    return nullptr;
}

} // namespace rsel
