/**
 * @file
 * Circular branch-history buffer for LEI (paper Section 3.1).
 *
 * Holds the most recently interpreted taken branches as (source,
 * target) pairs. A hash table over targets makes cycle detection
 * (the target of the current branch already being in the buffer)
 * O(1) per branch. Entries are addressed by a monotonically
 * increasing sequence number; wrapping and the truncation performed
 * after trace formation (Figure 5, line 13) are expressed by
 * shrinking the valid window, with stale hash entries rejected
 * lazily.
 */

#ifndef RSEL_SELECTION_HISTORY_BUFFER_HPP
#define RSEL_SELECTION_HISTORY_BUFFER_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "isa/types.hpp"

namespace rsel {

/** Circular buffer of interpreted taken branches with target hash. */
class HistoryBuffer
{
  public:
    /** One recorded taken branch. */
    struct Entry
    {
        /** Address of the branch instruction. */
        Addr src = invalidAddr;
        /** Branch target (a block start address). */
        Addr tgt = invalidAddr;
        /** True if this transfer was an exit from the code cache. */
        bool fromCacheExit = false;
    };

    /** @param capacity maximum live entries (the paper uses 500). */
    explicit HistoryBuffer(std::size_t capacity);

    /**
     * Find the most recent in-window occurrence of `tgt` recorded in
     * the hash, or nullopt. Call before insert(): this is the
     * Figure 5 line 6 lookup, which must see the pre-insert state.
     */
    std::optional<std::uint64_t> find(Addr tgt) const;

    /**
     * Append a branch, evicting the oldest entry when full.
     * @return the new entry's sequence number.
     */
    std::uint64_t insert(const Entry &entry);

    /** Point the target hash at a specific occurrence. */
    void setHashLocation(Addr tgt, std::uint64_t seq);

    /** Entry by sequence number. @pre inWindow(seq). */
    const Entry &at(std::uint64_t seq) const;

    /** True if `seq` addresses a live entry. */
    bool inWindow(std::uint64_t seq) const;

    /** Sequence number of the most recent entry. @pre !empty(). */
    std::uint64_t lastSeq() const;

    /**
     * Drop all entries strictly after `seq` (Figure 5, line 13).
     * Hash entries pointing past the cut become stale and are
     * rejected lazily by find().
     */
    void truncateAfter(std::uint64_t seq);

    /** Drop every entry and the target hash (used when a formed
     *  cycle filled the whole buffer and no anchor entry survives).
     *  Sequence numbers keep increasing across clears. */
    void clear();

    /** Live target-hash entries (exposed so tests can assert clear()
     *  actually releases the map instead of leaking it). */
    std::size_t hashedTargets() const { return hash_.size(); }

    /** Number of live entries. */
    std::size_t size() const { return count_; }

    /** True when no live entries exist. */
    bool empty() const { return count_ == 0; }

    /** Capacity in entries. */
    std::size_t capacity() const { return storage_.size(); }

  private:
    std::vector<Entry> storage_;
    std::unordered_map<Addr, std::uint64_t> hash_;
    /** Sequence number the next insert will get. */
    std::uint64_t nextSeq_ = 0;
    /** Live entries: sequence numbers [nextSeq_-count_, nextSeq_). */
    std::size_t count_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_HISTORY_BUFFER_HPP
