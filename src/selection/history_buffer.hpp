/**
 * @file
 * Circular branch-history buffer for LEI (paper Section 3.1).
 *
 * Holds the most recently interpreted taken branches as (source,
 * target) pairs. A hash table over targets makes cycle detection
 * (the target of the current branch already being in the buffer)
 * O(1) per branch. Entries are addressed by a monotonically
 * increasing sequence number; wrapping and the truncation performed
 * after trace formation (Figure 5, line 13) are expressed by
 * shrinking the valid window.
 *
 * The target hash is a fixed open-addressed table (linear probing,
 * backward-shift deletion) preallocated at twice the buffer
 * capacity: insert+find touch one cache line in the common case and
 * never rehash. Hash entries are purged eagerly — when eviction
 * overwrites the entry they point at, when truncateAfter() drops it,
 * and when find() rejects one as stale — so the table holds at most
 * one entry per live buffer slot (hashedTargets() <= capacity()).
 * Earlier revisions rejected stale entries lazily and never erased
 * them, which leaked without bound on truncate-heavy workloads.
 */

#ifndef RSEL_SELECTION_HISTORY_BUFFER_HPP
#define RSEL_SELECTION_HISTORY_BUFFER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/types.hpp"

namespace rsel {

/** Circular buffer of interpreted taken branches with target hash. */
class HistoryBuffer
{
  public:
    /** One recorded taken branch. */
    struct Entry
    {
        /** Address of the branch instruction. */
        Addr src = invalidAddr;
        /** Branch target (a block start address). */
        Addr tgt = invalidAddr;
        /** True if this transfer was an exit from the code cache. */
        bool fromCacheExit = false;
    };

    /** @param capacity maximum live entries (the paper uses 500). */
    explicit HistoryBuffer(std::size_t capacity);

    /**
     * Find the most recent in-window occurrence of `tgt` recorded in
     * the hash, or nullopt. Call before insert(): this is the
     * Figure 5 line 6 lookup, which must see the pre-insert state.
     */
    std::optional<std::uint64_t> find(Addr tgt) const;

    /**
     * Append a branch, evicting the oldest entry when full.
     * @return the new entry's sequence number.
     */
    std::uint64_t insert(const Entry &entry);

    /** Point the target hash at a specific occurrence. */
    void setHashLocation(Addr tgt, std::uint64_t seq);

    /** Entry by sequence number. @pre inWindow(seq). */
    const Entry &at(std::uint64_t seq) const;

    /** True if `seq` addresses a live entry. */
    bool inWindow(std::uint64_t seq) const;

    /** Sequence number of the most recent entry. @pre !empty(). */
    std::uint64_t lastSeq() const;

    /**
     * Drop all entries strictly after `seq` (Figure 5, line 13).
     * Hash entries pointing past the cut are purged now — the
     * dropped sequence numbers will be reused by future inserts, so
     * leaving them would both leak and demand content re-checks.
     */
    void truncateAfter(std::uint64_t seq);

    /** Drop every entry and the target hash (used when a formed
     *  cycle filled the whole buffer and no anchor entry survives).
     *  Sequence numbers keep increasing across clears. */
    void clear();

    /** Live target-hash entries (exposed so tests can assert the
     *  purge discipline: always <= capacity()). */
    std::size_t hashedTargets() const { return hashCount_; }

    /** Number of live entries. */
    std::size_t size() const { return count_; }

    /** True when no live entries exist. */
    bool empty() const { return count_ == 0; }

    /** Capacity in entries. */
    std::size_t capacity() const { return storage_.size(); }

  private:
    /** One open-addressed table slot; invalidAddr key = empty. */
    struct HashSlot
    {
        Addr key = invalidAddr;
        std::uint64_t seq = 0;
    };

    /** Home slot of a key (Fibonacci hash into the table). */
    std::size_t idealSlot(Addr key) const
    {
        return static_cast<std::size_t>(
            (key * 0x9E3779B97F4A7C15ull) >> tableShift_);
    }

    /** Index of `key`'s slot, or npos when absent. */
    std::size_t findSlot(Addr key) const;

    /** Remove slot `i`, backward-shifting the probe chain. */
    void eraseSlot(std::size_t i) const;

    /** Purge the hash entry for `tgt` iff it points at `seq`. */
    void eraseHashIfAt(Addr tgt, std::uint64_t seq);

    std::vector<Entry> storage_;
    /** Mutable so find() (const) can purge entries it rejects. */
    mutable std::vector<HashSlot> table_;
    std::size_t tableMask_ = 0;
    unsigned tableShift_ = 0;
    mutable std::size_t hashCount_ = 0;
    /** Sequence number the next insert will get. */
    std::uint64_t nextSeq_ = 0;
    /** Live entries: sequence numbers [nextSeq_-count_, nextSeq_). */
    std::size_t count_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_HISTORY_BUFFER_HPP
