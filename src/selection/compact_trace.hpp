/**
 * @file
 * Compact observed-trace representation (paper Figure 14).
 *
 * Trace combination must store several observed traces per profiled
 * entrance until the profiling window closes. To keep that memory
 * small, each trace is stored as a bit string: two bits per branch
 * ("10" = conditional not taken, "11" = taken with a target known
 * from the instruction, "01" = taken indirect followed by the 64-bit
 * target address), terminated by "00" and the address of the last
 * instruction of the trace. Fall-through block boundaries encode no
 * bits — the decoder follows them implicitly.
 */

#ifndef RSEL_SELECTION_COMPACT_TRACE_HPP
#define RSEL_SELECTION_COMPACT_TRACE_HPP

#include <cstdint>
#include <vector>

#include "isa/basic_block.hpp"

namespace rsel {

class Program;

/** An immutable, compactly encoded observed trace. */
class CompactTrace
{
  public:
    /**
     * Encode a recorded trace.
     * @param path blocks in execution order; non-empty. Consecutive
     *             blocks must be connected in the program (taken
     *             branch or fall-through).
     */
    static CompactTrace encode(const std::vector<const BasicBlock *> &path);

    /**
     * Decode back into a block path.
     * @param prog      the program the trace was recorded from.
     * @param entryAddr start address of the trace.
     */
    std::vector<const BasicBlock *> decode(const Program &prog,
                                           Addr entryAddr) const;

    /**
     * Storage footprint in bytes (the paper's Figure 18 memory
     * metric): the bit string rounded up to whole bytes.
     */
    std::uint64_t sizeBytes() const { return (bitLen_ + 7) / 8; }

    /** Number of payload bits (for tests). */
    std::uint64_t bitLength() const { return bitLen_; }

  private:
    CompactTrace() = default;

    void appendBits(std::uint64_t value, unsigned nbits);
    std::uint64_t readBits(std::uint64_t &cursor, unsigned nbits) const;

    std::vector<std::uint8_t> bits_;
    std::uint64_t bitLen_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_COMPACT_TRACE_HPP
