#include "selection/history_buffer.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rsel {

namespace {
constexpr std::size_t npos = ~std::size_t{0};
} // namespace

HistoryBuffer::HistoryBuffer(std::size_t capacity)
    : storage_(capacity)
{
    RSEL_ASSERT(capacity > 0, "history buffer needs capacity >= 1");
    // Reserve the whole table up front: power-of-two, at least twice
    // the capacity, so the load factor stays under 1/2 (the purge
    // discipline bounds live entries by the capacity) and inserts
    // never rehash.
    std::size_t slots = 8;
    while (slots < 2 * capacity)
        slots <<= 1;
    table_.assign(slots, HashSlot{});
    tableMask_ = slots - 1;
    tableShift_ = 64;
    for (std::size_t s = slots; s > 1; s >>= 1)
        --tableShift_;
}

bool
HistoryBuffer::inWindow(std::uint64_t seq) const
{
    return seq < nextSeq_ && nextSeq_ - seq <= count_;
}

std::size_t
HistoryBuffer::findSlot(Addr key) const
{
    std::size_t i = idealSlot(key);
    while (table_[i].key != invalidAddr) {
        if (table_[i].key == key)
            return i;
        i = (i + 1) & tableMask_;
    }
    return npos;
}

void
HistoryBuffer::eraseSlot(std::size_t i) const
{
    // Backward-shift deletion: pull each displaced follower of the
    // probe chain into the hole so lookups never need tombstones.
    --hashCount_;
    std::size_t j = i;
    for (;;) {
        j = (j + 1) & tableMask_;
        if (table_[j].key == invalidAddr)
            break;
        const std::size_t h = idealSlot(table_[j].key);
        if (((i - h) & tableMask_) < ((j - h) & tableMask_)) {
            table_[i] = table_[j];
            i = j;
        }
    }
    table_[i] = HashSlot{};
}

void
HistoryBuffer::eraseHashIfAt(Addr tgt, std::uint64_t seq)
{
    const std::size_t i = findSlot(tgt);
    if (i != npos && table_[i].seq == seq)
        eraseSlot(i);
}

std::optional<std::uint64_t>
HistoryBuffer::find(Addr tgt) const
{
    const std::size_t i = findSlot(tgt);
    if (i == npos)
        return std::nullopt;
    const std::uint64_t seq = table_[i].seq;
    // The hash tracks locations, not content; an entry can outlive
    // what it points at (a caller re-binding locations out of
    // order). Purge instead of merely rejecting, so stale entries
    // cannot accumulate.
    if (!inWindow(seq) || storage_[seq % storage_.size()].tgt != tgt) {
        eraseSlot(i);
        return std::nullopt;
    }
    return seq;
}

std::uint64_t
HistoryBuffer::insert(const Entry &entry)
{
    const std::uint64_t seq = nextSeq_++;
    Entry &slot = storage_[seq % storage_.size()];
    if (count_ < storage_.size()) {
        ++count_;
    } else {
        // Evicting the oldest entry: drop its hash pointer if it
        // still points exactly at the sequence number being
        // overwritten. This keeps the table bounded by the window.
        eraseHashIfAt(slot.tgt, seq - storage_.size());
    }
    slot = entry;
    return seq;
}

void
HistoryBuffer::setHashLocation(Addr tgt, std::uint64_t seq)
{
    RSEL_ASSERT(tgt != invalidAddr,
                "cannot hash the invalid address");
    std::size_t i = idealSlot(tgt);
    while (table_[i].key != invalidAddr && table_[i].key != tgt)
        i = (i + 1) & tableMask_;
    if (table_[i].key == invalidAddr) {
        RSEL_ASSERT(hashCount_ + 1 < table_.size(),
                    "history-buffer hash overfilled (purge broken?)");
        table_[i].key = tgt;
        ++hashCount_;
    }
    table_[i].seq = seq;
}

const HistoryBuffer::Entry &
HistoryBuffer::at(std::uint64_t seq) const
{
    RSEL_ASSERT(inWindow(seq), "history-buffer sequence out of window");
    return storage_[seq % storage_.size()];
}

std::uint64_t
HistoryBuffer::lastSeq() const
{
    RSEL_ASSERT(count_ > 0, "history buffer is empty");
    return nextSeq_ - 1;
}

void
HistoryBuffer::truncateAfter(std::uint64_t seq)
{
    RSEL_ASSERT(inWindow(seq), "cannot truncate to an evicted entry");
    // Purge hash entries pointing into the dropped range before the
    // window moves: those sequence numbers will be handed out again
    // by future inserts (nextSeq_ rewinds below), so a surviving
    // pointer would alias a different branch.
    for (std::uint64_t s = seq + 1; s < nextSeq_; ++s)
        eraseHashIfAt(storage_[s % storage_.size()].tgt, s);
    count_ -= static_cast<std::size_t>(nextSeq_ - 1 - seq);
    nextSeq_ = seq + 1;
}

void
HistoryBuffer::clear()
{
    count_ = 0;
    // Without this the target hash keeps every address ever hashed,
    // growing its probe chains across clears; the stale entries are
    // out-of-window (so find() was already correct) but the
    // occupancy is pure leak.
    if (hashCount_ != 0) {
        std::fill(table_.begin(), table_.end(), HashSlot{});
        hashCount_ = 0;
    }
}

} // namespace rsel
