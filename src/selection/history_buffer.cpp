#include "selection/history_buffer.hpp"

#include "support/error.hpp"

namespace rsel {

HistoryBuffer::HistoryBuffer(std::size_t capacity)
    : storage_(capacity)
{
    RSEL_ASSERT(capacity > 0, "history buffer needs capacity >= 1");
}

bool
HistoryBuffer::inWindow(std::uint64_t seq) const
{
    return seq < nextSeq_ && nextSeq_ - seq <= count_;
}

std::optional<std::uint64_t>
HistoryBuffer::find(Addr tgt) const
{
    auto it = hash_.find(tgt);
    if (it == hash_.end() || !inWindow(it->second))
        return std::nullopt;
    // The hash tracks locations, not content; a slot can have been
    // truncated and re-filled by a different branch. Reject those.
    if (storage_[it->second % storage_.size()].tgt != tgt)
        return std::nullopt;
    return it->second;
}

std::uint64_t
HistoryBuffer::insert(const Entry &entry)
{
    const std::uint64_t seq = nextSeq_++;
    storage_[seq % storage_.size()] = entry;
    if (count_ < storage_.size())
        ++count_;
    return seq;
}

void
HistoryBuffer::setHashLocation(Addr tgt, std::uint64_t seq)
{
    hash_[tgt] = seq;
}

const HistoryBuffer::Entry &
HistoryBuffer::at(std::uint64_t seq) const
{
    RSEL_ASSERT(inWindow(seq), "history-buffer sequence out of window");
    return storage_[seq % storage_.size()];
}

std::uint64_t
HistoryBuffer::lastSeq() const
{
    RSEL_ASSERT(count_ > 0, "history buffer is empty");
    return nextSeq_ - 1;
}

void
HistoryBuffer::truncateAfter(std::uint64_t seq)
{
    RSEL_ASSERT(inWindow(seq), "cannot truncate to an evicted entry");
    count_ -= static_cast<std::size_t>(nextSeq_ - 1 - seq);
    nextSeq_ = seq + 1;
}

void
HistoryBuffer::clear()
{
    count_ = 0;
    // Without this the target→sequence map keeps every address ever
    // hashed, growing without bound across clears; the stale entries
    // are out-of-window (so find() was already correct) but the
    // memory is pure leak.
    hash_.clear();
}

} // namespace rsel
