#include "selection/wrs_selector.hpp"

#include <algorithm>

#include "program/program.hpp"
#include "runtime/code_cache.hpp"
#include "support/error.hpp"

namespace rsel {

WrsSelector::WrsSelector(const Program &prog, const CodeCache &cache,
                         WrsConfig cfg)
    : prog_(prog), cache_(cache), cfg_(cfg)
{
    RSEL_ASSERT(cfg_.samplePeriod >= 1, "sample period must be >= 1");
    RSEL_ASSERT(cfg_.hotSamples >= 1, "sample threshold must be >= 1");
    RSEL_ASSERT(cfg_.maxTraceInsts >= 1, "size limit must be >= 1");
}

std::optional<RegionSpec>
WrsSelector::onInterpreted(const SelectorEvent &ev)
{
    profile_.record(ev);

    // Periodic PC sampling: only every samplePeriod-th interpreted
    // block is observed at all — the low-overhead property the
    // paper attributes to this family.
    if (++tick_ % cfg_.samplePeriod != 0)
        return std::nullopt;

    // A cached region head can still be interpreted when entered by
    // fall-through; it must not seed a second region there.
    if (cache_.lookup(ev.block->startAddr()) != nullptr)
        return std::nullopt;

    std::uint32_t &count = samples_[ev.block->startAddr()];
    ++count;
    maxCounters_ = std::max(maxCounters_, samples_.size());
    if (count < cfg_.hotSamples)
        return std::nullopt;

    samples_.erase(ev.block->startAddr());
    std::vector<const BasicBlock *> path = formMostLikelyPath(
        prog_, cache_, profile_, *ev.block, cfg_.maxTraceInsts);
    RSEL_ASSERT(!path.empty(), "WRS trace must contain its entry");

    RegionSpec spec;
    spec.kind = Region::Kind::Trace;
    spec.blocks = std::move(path);
    return spec;
}

} // namespace rsel
