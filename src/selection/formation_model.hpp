/**
 * @file
 * Static formation-rule models of the shipped selectors.
 *
 * Each selector constrains where a region may *begin*; the static
 * predictor turns that constraint into sound upper bounds on region
 * count, duplication and expansion without running the simulator.
 * The entrance rules mirror the selector implementations:
 *
 *  - NET / NET+comb / Mojo place profiling counters only at targets
 *    of taken transfers (backward branches and code-cache exits), so
 *    every entrance has at least one possible-CFG predecessor.
 *  - LEI / LEI+comb fire a counter only when a branch target
 *    reappears in the history buffer — the block executed at least
 *    twice, which puts it on a possible-CFG cycle.
 *  - BOA (edge profiles) and WRS (PC sampling) carry no such
 *    refinement here; any reachable block may become an entrance.
 *
 * All bounds additionally rest on the single-entrance invariant
 * (at most one region per entrance address, enforced by the
 * region-single-entrance verifier pass), which holds for unbounded,
 * fault-free runs — the validation harness's configuration.
 */

#ifndef RSEL_SELECTION_FORMATION_MODEL_HPP
#define RSEL_SELECTION_FORMATION_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace rsel {

/** Static description of one selector's region-formation rules. */
struct FormationModel
{
    /** Where this selector may start a region. */
    enum class Entrance : std::uint8_t {
        AnyReachable,     ///< any block reachable from the entry
        NeedsPredecessor, ///< entrance entered via a taken transfer
        OnCycle,          ///< entrance lies on a possible-CFG cycle
    };

    /** Selector name as reported in SimResult::selector. */
    std::string selector;
    Entrance entrance = Entrance::AnyReachable;
    /** Emits only single-path traces (no multi-path combination). */
    bool tracesOnly = true;
    /**
     * Heuristic scale in (0, 1] for the exit-stub density estimate:
     * combination keeps rejoining paths inside the region, so
     * combined regions stub a smaller share of their branches.
     */
    double stubDiscount = 1.0;
};

/** One model per shipped selector, in allSelectors order. */
const std::vector<FormationModel> &allFormationModels();

/** Model for a selector name; nullptr if unknown. */
const FormationModel *findFormationModel(const std::string &selector);

} // namespace rsel

#endif // RSEL_SELECTION_FORMATION_MODEL_HPP
