/**
 * @file
 * The region-selector interface.
 *
 * The paper's simulation framework "abstracted all details of region
 * selection out", allowing algorithms to be swapped without modifying
 * the framework; RegionSelector is that abstraction. The DynOptSystem
 * notifies the selector of every interpreted block and of every entry
 * into the code cache; the selector answers with a completed region
 * when it has one.
 */

#ifndef RSEL_SELECTION_SELECTOR_HPP
#define RSEL_SELECTION_SELECTOR_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/basic_block.hpp"
#include "runtime/region.hpp"

namespace rsel {

class Program;
class CodeCache;

/**
 * One interpreted-block notification. Delivered for every block the
 * interpreter executes (never for blocks executing from the cache).
 */
struct SelectorEvent
{
    /** The block being interpreted. */
    const BasicBlock *block = nullptr;
    /**
     * True if the block was entered by a taken control transfer —
     * including the jump through an exit stub when execution leaves
     * the code cache (see fromCacheExit).
     */
    bool viaTaken = false;
    /** Address of the transferring branch; valid iff viaTaken. */
    Addr branchAddr = invalidAddr;
    /** True if this entry came directly from a code-cache exit. */
    bool fromCacheExit = false;
};

/** A completed region, ready for the cache. */
struct RegionSpec
{
    /** Trace (linear path) or MultiPath (combined region). */
    Region::Kind kind = Region::Kind::Trace;
    /**
     * Member blocks. For a trace: recorded path order. For a
     * multi-path region: entry block first.
     */
    std::vector<const BasicBlock *> blocks;
};

/**
 * A code-cache disturbance the driver reports to the selector so
 * profiling state referring to dropped translations can be shed.
 */
enum class CacheDisruption : std::uint8_t {
    /**
     * One or more cached regions were invalidated (self-modifying
     * code). In-flight recordings and stored observations may
     * reference stale cache contents and should be dropped; hotness
     * counters stay (the blocks themselves are still hot).
     */
    Invalidation,
    /** The whole cache was flushed (capacity pressure). Same
     *  shedding contract as Invalidation. */
    Flush,
    /** Full profiling reset: counters, buffers and observations all
     *  restart cold (a fault-injection worst case). */
    Reset,
};

/**
 * A region-selection algorithm.
 *
 * Implementations observe the interpreted stream and decide when to
 * promote a region to the code cache. The contract with the driver:
 *
 *  - onInterpreted() fires once per interpreted block, before the
 *    block's instructions are counted, and only when the block's
 *    start address is not a cached region entry.
 *  - onCacheEnter() fires when control transfers from the
 *    interpreter into a cached region (used, e.g., by NET to stop a
 *    trace that reached the start of another trace).
 *  - Returning a RegionSpec hands the region to the driver, which
 *    inserts it into the cache; if the spec's entry equals the block
 *    of the current event, the driver jumps into the new region
 *    immediately (the "jump newT" of the paper's Figure 5).
 */
class RegionSelector
{
  public:
    virtual ~RegionSelector() = default;

    /** Observe an interpreted block; possibly complete a region. */
    virtual std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &event) = 0;

    /** Observe a transfer from the interpreter into the cache. */
    virtual std::optional<RegionSpec>
    onCacheEnter(const BasicBlock &entry)
    {
        (void)entry;
        return std::nullopt;
    }

    /**
     * Observe a cache disruption (invalidation, flush or reset).
     * Default: keep all state — correct for selectors whose profile
     * describes the program rather than the cache. Only fired when
     * fault injection is armed; never on policy-driven eviction,
     * whose effects selectors already observe through lookup().
     */
    virtual void onCacheDisruption(CacheDisruption kind)
    {
        (void)kind;
    }

    /**
     * High-water mark of simultaneously live profiling counters
     * (the paper's Figure 10 metric).
     */
    virtual std::size_t maxLiveCounters() const = 0;

    /**
     * Peak bytes of compactly stored observed traces (the paper's
     * Figure 18 metric); zero for non-combining selectors.
     */
    virtual std::uint64_t peakObservedTraceBytes() const { return 0; }

    /**
     * Total iterations of the mark-rejoining-paths dataflow that
     * marked at least one block, and the number that needed a second
     * or later sweep (instrumentation for the paper's "roughly 0.1%"
     * claim); zeros for non-combining selectors.
     */
    virtual std::uint64_t markSweepRegions() const { return 0; }
    virtual std::uint64_t markSweepMultiIterRegions() const { return 0; }

    /** Algorithm name for reports (e.g. "NET", "LEI", "NET+comb"). */
    virtual std::string name() const = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_SELECTOR_HPP
