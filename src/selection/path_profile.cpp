#include "selection/path_profile.hpp"

#include <algorithm>
#include <unordered_set>

#include "program/program.hpp"
#include "runtime/code_cache.hpp"

namespace rsel {

const BasicBlock *
PathProfile::record(const SelectorEvent &ev)
{
    const BasicBlock *prev = lastBlock_;
    lastBlock_ = ev.block;
    if (prev == nullptr || ev.fromCacheExit)
        return prev;

    const bool takenFromPrev =
        ev.viaTaken && ev.branchAddr == prev->lastInstAddr();
    const bool fellFromPrev =
        !ev.viaTaken &&
        ev.block->startAddr() == prev->fallThroughAddr();
    if (!takenFromPrev && !fellFromPrev)
        return prev;

    switch (prev->terminator()) {
      case BranchKind::CondDirect: {
        EdgeProfile &profile = edges_[prev->id()];
        if (takenFromPrev)
            ++profile.taken;
        else
            ++profile.notTaken;
        break;
      }
      case BranchKind::IndirectJump:
      case BranchKind::IndirectCall:
      case BranchKind::Return:
        if (takenFromPrev)
            ++indirect_[prev->id()][ev.block->startAddr()];
        break;
      default:
        break;
    }
    return prev;
}

std::uint64_t
PathProfile::takenCount(BlockId id) const
{
    auto it = edges_.find(id);
    return it == edges_.end() ? 0 : it->second.taken;
}

std::uint64_t
PathProfile::notTakenCount(BlockId id) const
{
    auto it = edges_.find(id);
    return it == edges_.end() ? 0 : it->second.notTaken;
}

Addr
PathProfile::hottestIndirectTarget(BlockId id) const
{
    auto it = indirect_.find(id);
    if (it == indirect_.end() || it->second.empty())
        return invalidAddr;
    const auto best = std::max_element(
        it->second.begin(), it->second.end(),
        [](const auto &a, const auto &b) {
            return a.second < b.second;
        });
    return best->first;
}

bool
PathProfile::prefersTaken(BlockId id) const
{
    auto it = edges_.find(id);
    return it != edges_.end() &&
           it->second.taken > it->second.notTaken;
}

std::vector<const BasicBlock *>
formMostLikelyPath(const Program &prog, const CodeCache &cache,
                   const PathProfile &profile, const BasicBlock &entry,
                   std::uint32_t max_insts)
{
    std::vector<const BasicBlock *> path;
    std::unordered_set<BlockId> member;
    std::uint64_t insts = 0;

    const BasicBlock *b = &entry;
    while (b != nullptr) {
        if (b != &entry && cache.lookup(b->startAddr()) != nullptr)
            break; // reached an existing region
        if (member.count(b->id()) != 0)
            break; // completed a cycle (or re-joined the path)
        // The entry block is always included, even when it alone
        // exceeds the size limit.
        if (!path.empty() && insts + b->instCount() > max_insts)
            break;
        path.push_back(b);
        member.insert(b->id());
        insts += b->instCount();

        Addr next = invalidAddr;
        switch (b->terminator()) {
          case BranchKind::None:
            next = b->fallThroughAddr();
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            next = b->takenTarget();
            break;
          case BranchKind::CondDirect:
            next = profile.prefersTaken(b->id())
                       ? b->takenTarget()
                       : b->fallThroughAddr();
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
          case BranchKind::Return:
            next = profile.hottestIndirectTarget(b->id());
            if (next == invalidAddr)
                return path;
            break;
          case BranchKind::Halt:
            return path;
        }
        b = prog.blockAtAddr(next);
    }
    return path;
}

} // namespace rsel
