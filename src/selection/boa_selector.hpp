/**
 * @file
 * BOA-style trace selection (paper Section 5; Gschwind et al. /
 * Sathaye et al.).
 *
 * IBM's Binary-translated Optimization Architecture selects traces
 * from accumulated *edge profiles* rather than from a single
 * observed execution: while emulating, it counts how often each
 * conditional branch goes each way; once an entry point has been
 * emulated a small number of times (published value: 15), a trace is
 * built by statically following the most frequently taken target of
 * every branch.
 *
 * The paper's point about this family: more careful per-branch
 * profiling does not address separation or duplication — the
 * selected region is still a single path. Including BOA lets the
 * benches reproduce that comparison.
 */

#ifndef RSEL_SELECTION_BOA_SELECTOR_HPP
#define RSEL_SELECTION_BOA_SELECTOR_HPP

#include <unordered_map>

#include "selection/path_profile.hpp"
#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Configuration of a BoaSelector. */
struct BoaConfig
{
    /** Entry-point execution threshold (published value: 15). */
    std::uint32_t hotThreshold = 15;
    /** Maximum instructions per trace. */
    std::uint32_t maxTraceInsts = 1024;
};

/** Edge-profile-guided trace selection in the BOA style. */
class BoaSelector : public RegionSelector
{
  public:
    BoaSelector(const Program &prog, const CodeCache &cache,
                BoaConfig cfg = {});

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &event) override;

    void onCacheDisruption(CacheDisruption kind) override
    {
        // Edge profiles describe the program, not the cache, so they
        // survive invalidations and flushes; only the in-flight
        // attribution chain breaks. A reset forgets everything.
        if (kind == CacheDisruption::Reset) {
            profile_.reset();
            counters_.clear();
        } else {
            profile_.breakChain();
        }
    }

    std::size_t maxLiveCounters() const override { return maxCounters_; }

    std::string name() const override { return "BOA"; }

    /** The accumulated edge profile (for tests). */
    const PathProfile &profile() const { return profile_; }

  private:
    const Program &prog_;
    const CodeCache &cache_;
    BoaConfig cfg_;

    PathProfile profile_;
    std::unordered_map<Addr, std::uint32_t> counters_;
    std::size_t maxCounters_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_BOA_SELECTOR_HPP
