/**
 * @file
 * Last-Executed Iteration (LEI) trace selection (paper Section 3,
 * Figures 5 and 6) — plus the optional trace-combination extension.
 *
 * LEI keeps a circular history buffer of interpreted taken branches.
 * When a branch target already appears in the buffer, a cycle has
 * just executed and the buffer holds its path. If the cycle closed
 * with a backward branch, or began where the code cache was exited,
 * a counter for the target is incremented; at the threshold
 * (published value: 35) the cyclic path is reconstructed from the
 * buffer and promoted. Traces may include any kind of branch —
 * including backward calls and returns — so LEI spans the
 * interprocedural cycles NET cannot, while stopping at the head of
 * any existing region to avoid duplicating nested cycles.
 */

#ifndef RSEL_SELECTION_LEI_SELECTOR_HPP
#define RSEL_SELECTION_LEI_SELECTOR_HPP

#include <memory>
#include <unordered_map>

#include "selection/history_buffer.hpp"
#include "selection/observed_store.hpp"
#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Configuration of a LeiSelector. */
struct LeiConfig
{
    /** T_cyc: cycle-completion threshold (paper standard: 35). */
    std::uint32_t hotThreshold = 35;
    /** History buffer capacity (paper standard: 500). */
    std::size_t bufferCapacity = 500;
    /** Maximum instructions per trace. */
    std::uint32_t maxTraceInsts = 1024;
    /** Enable trace combination (Section 4). */
    bool combine = false;
    /** T_prof: observed traces per entrance when combining. */
    std::uint32_t profWindow = 15;
    /** T_min: occurrence threshold for keeping a block. */
    std::uint32_t minOccur = 5;
};

/** LEI trace selection, optionally with trace combination. */
class LeiSelector : public RegionSelector
{
  public:
    /**
     * @param prog  program being executed (for path reconstruction).
     * @param cache code cache (read-only; consulted for stop rules).
     * @param cfg   thresholds and mode.
     */
    LeiSelector(const Program &prog, const CodeCache &cache,
                LeiConfig cfg = {});

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &event) override;

    void onCacheDisruption(CacheDisruption kind) override;

    std::size_t maxLiveCounters() const override { return maxCounters_; }

    std::uint64_t peakObservedTraceBytes() const override;
    std::uint64_t markSweepRegions() const override;
    std::uint64_t markSweepMultiIterRegions() const override;

    std::string name() const override;

    /** The history buffer (for tests). */
    const HistoryBuffer &buffer() const { return buffer_; }

    /** Live counters right now (for tests). */
    std::size_t liveCounters() const { return counters_.size(); }

  private:
    /**
     * Reconstruct the cyclic path from the history buffer
     * (FORM-TRACE, Figure 6): walk each recorded branch after `old`,
     * appending the fall-through run from the previous target to the
     * branch source; stop at the head of an existing region, at the
     * size limit, or when the cycle completes.
     */
    std::vector<const BasicBlock *> formTrace(Addr start,
                                              std::uint64_t oldSeq);

    const Program &prog_;
    const CodeCache &cache_;
    LeiConfig cfg_;

    HistoryBuffer buffer_;
    std::unordered_map<Addr, std::uint32_t> counters_;
    std::size_t maxCounters_ = 0;

    std::unique_ptr<ObservedTraceStore> store_;
};

} // namespace rsel

#endif // RSEL_SELECTION_LEI_SELECTOR_HPP
