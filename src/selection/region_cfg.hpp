/**
 * @file
 * CFG built from observed traces, for trace combination (paper
 * Sections 4.2.2 and 4.2.3).
 *
 * The CFG represents only control transfers observed in some trace,
 * which is sufficient because any other transfer exits the region.
 * Blocks are annotated with the number of observed traces containing
 * them; region selection marks blocks occurring in at least T_min
 * traces, then marks every block on an observed path that rejoins a
 * marked block (the Figure 15 iterative dataflow), and finally drops
 * everything unmarked.
 */

#ifndef RSEL_SELECTION_REGION_CFG_HPP
#define RSEL_SELECTION_REGION_CFG_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/basic_block.hpp"

namespace rsel {

/** Incremental CFG over observed traces rooted at one entrance. */
class RegionCfg
{
  public:
    /** @param entry the common entry block of all observed traces. */
    explicit RegionCfg(const BasicBlock *entry);

    /**
     * Add one observed trace. The first block must be the entry.
     * Each block's occurrence count rises at most once per trace.
     */
    void addTrace(const std::vector<const BasicBlock *> &trace);

    /** Number of traces added so far. */
    std::uint32_t traceCount() const { return traces_; }

    /** Occurrence count of a block (0 if absent). */
    std::uint32_t occurrences(BlockId id) const;

    /** Mark all blocks occurring in at least `tmin` traces. */
    void markFrequent(std::uint32_t tmin);

    /**
     * Mark every block from which a marked block is reachable along
     * observed edges (the paper's rejoining paths; Figure 15).
     * Iterates over blocks in post order so marks usually propagate
     * fully in one sweep.
     *
     * @return the number of sweeps that marked at least one block
     *         (the paper reports ~0.1% of regions need a second).
     */
    std::uint32_t markRejoiningPaths();

    /**
     * Marked blocks, entry first. @pre markFrequent() ran (the entry
     * occurs in every trace, so it is always marked).
     */
    std::vector<const BasicBlock *> markedBlocks() const;

    /** Whether a specific block is currently marked. */
    bool isMarked(BlockId id) const;

    /** Number of distinct blocks in the CFG. */
    std::size_t blockCount() const { return nodes_.size(); }

    /** Number of distinct observed edges. */
    std::size_t edgeCount() const { return edges_; }

  private:
    struct Node
    {
        const BasicBlock *block = nullptr;
        std::uint32_t occurrences = 0;
        bool marked = false;
        std::vector<std::size_t> succs; ///< node indices
    };

    std::size_t nodeFor(const BasicBlock *b);

    /** Post-order over nodes reachable from the entry. */
    std::vector<std::size_t> postOrder() const;

    const BasicBlock *entry_;
    std::vector<Node> nodes_;
    std::unordered_map<BlockId, std::size_t> index_;
    std::size_t edges_ = 0;
    std::uint32_t traces_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_REGION_CFG_HPP
