/**
 * @file
 * Storage and combination of observed traces (paper Section 4.2).
 *
 * While an entrance is being profiled, each observed trace is stored
 * independently in compact form — no cross-trace analysis happens
 * until the profiling window closes (Section 4.2.1). When the window
 * closes, the traces are decoded, merged into a RegionCfg, filtered
 * by occurrence count and rejoining-path marking, and returned as a
 * multi-path region.
 *
 * The store also tracks the peak aggregate size of live observed
 * traces, which is the paper's Figure 18 memory-overhead metric.
 */

#ifndef RSEL_SELECTION_OBSERVED_STORE_HPP
#define RSEL_SELECTION_OBSERVED_STORE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "selection/compact_trace.hpp"
#include "selection/selector.hpp"

namespace rsel {

/** Per-entrance observed-trace store with combine step. */
class ObservedTraceStore
{
  public:
    /**
     * @param profWindow T_prof: observed traces per entrance.
     * @param minOccur   T_min: occurrence threshold for keeping a
     *                   block in the combined region.
     */
    ObservedTraceStore(std::uint32_t profWindow, std::uint32_t minOccur);

    /**
     * Store one observed trace for `entry`.
     * @return true when the entrance has now observed T_prof traces
     *         and is ready to combine.
     */
    bool store(Addr entry, const std::vector<const BasicBlock *> &path);

    /** Observed traces stored so far for an entrance. */
    std::uint32_t observedCount(Addr entry) const;

    /**
     * Combine the stored traces of `entry` into a multi-path region
     * (Figure 13 lines 12-17) and release their storage.
     * @pre observedCount(entry) >= 1.
     */
    RegionSpec combine(const Program &prog, Addr entry);

    /**
     * Release every stored observation (cache disruption: observed
     * traces may describe invalidated translations). The peak-bytes
     * high-water mark and sweep statistics survive; profiling starts
     * over from empty windows.
     */
    void clear()
    {
        observations_.clear();
        curBytes_ = 0;
    }

    /** Peak aggregate bytes of live observed traces. */
    std::uint64_t peakBytes() const { return peakBytes_; }

    /** Currently live observed-trace bytes. */
    std::uint64_t currentBytes() const { return curBytes_; }

    /** Regions whose rejoining-path dataflow marked blocks. */
    std::uint64_t sweepRegions() const { return sweepRegions_; }

    /** Of those, regions that needed a second or later sweep. */
    std::uint64_t multiIterRegions() const { return multiIterRegions_; }

  private:
    struct Observation
    {
        std::vector<CompactTrace> traces;
        std::uint64_t bytes = 0;
    };

    std::uint32_t profWindow_;
    std::uint32_t minOccur_;
    std::unordered_map<Addr, Observation> observations_;
    std::uint64_t curBytes_ = 0;
    std::uint64_t peakBytes_ = 0;
    std::uint64_t sweepRegions_ = 0;
    std::uint64_t multiIterRegions_ = 0;
};

} // namespace rsel

#endif // RSEL_SELECTION_OBSERVED_STORE_HPP
