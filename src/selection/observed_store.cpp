#include "selection/observed_store.hpp"

#include <algorithm>

#include "program/program.hpp"
#include "selection/region_cfg.hpp"
#include "support/error.hpp"

namespace rsel {

ObservedTraceStore::ObservedTraceStore(std::uint32_t profWindow,
                                       std::uint32_t minOccur)
    : profWindow_(profWindow), minOccur_(minOccur)
{
    RSEL_ASSERT(profWindow_ >= 1, "T_prof must be >= 1");
    RSEL_ASSERT(minOccur_ >= 1 && minOccur_ <= profWindow_,
                "T_min must be in [1, T_prof]");
}

bool
ObservedTraceStore::store(Addr entry,
                          const std::vector<const BasicBlock *> &path)
{
    RSEL_ASSERT(!path.empty() && path.front()->startAddr() == entry,
                "observed trace must start at its entrance address");
    Observation &obs = observations_[entry];
    RSEL_ASSERT(obs.traces.size() < profWindow_,
                "entrance already has a full profiling window");

    CompactTrace ct = CompactTrace::encode(path);
    obs.bytes += ct.sizeBytes();
    curBytes_ += ct.sizeBytes();
    peakBytes_ = std::max(peakBytes_, curBytes_);
    obs.traces.push_back(std::move(ct));
    return obs.traces.size() == profWindow_;
}

std::uint32_t
ObservedTraceStore::observedCount(Addr entry) const
{
    auto it = observations_.find(entry);
    if (it == observations_.end())
        return 0;
    return static_cast<std::uint32_t>(it->second.traces.size());
}

RegionSpec
ObservedTraceStore::combine(const Program &prog, Addr entry)
{
    auto it = observations_.find(entry);
    RSEL_ASSERT(it != observations_.end() && !it->second.traces.empty(),
                "no observed traces to combine");

    const BasicBlock *entryBlock = prog.blockAtAddr(entry);
    RSEL_ASSERT(entryBlock != nullptr, "entrance is not a block start");

    RegionCfg cfg(entryBlock);
    for (const CompactTrace &ct : it->second.traces)
        cfg.addTrace(ct.decode(prog, entry));

    cfg.markFrequent(minOccur_);
    const std::uint32_t sweeps = cfg.markRejoiningPaths();
    ++sweepRegions_;
    if (sweeps >= 2)
        ++multiIterRegions_;

    RegionSpec spec;
    spec.kind = Region::Kind::MultiPath;
    spec.blocks = cfg.markedBlocks();

    curBytes_ -= it->second.bytes;
    observations_.erase(it);
    return spec;
}

} // namespace rsel
