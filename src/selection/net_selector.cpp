#include "selection/net_selector.hpp"

#include <algorithm>

#include "program/program.hpp"
#include "runtime/code_cache.hpp"
#include "support/error.hpp"

namespace rsel {

NetSelector::NetSelector(const Program &prog, const CodeCache &cache,
                         NetConfig cfg)
    : prog_(prog), cache_(cache), cfg_(cfg)
{
    RSEL_ASSERT(cfg_.hotThreshold >= 1, "hot threshold must be >= 1");
    RSEL_ASSERT(cfg_.maxTraceInsts >= 1, "size limit must be >= 1");
    if (cfg_.combine) {
        RSEL_ASSERT(cfg_.hotThreshold > cfg_.profWindow,
                    "combining needs hotThreshold > profWindow so the "
                    "start threshold stays positive");
        store_ = std::make_unique<ObservedTraceStore>(cfg_.profWindow,
                                                      cfg_.minOccur);
    }
}

std::uint32_t
NetSelector::triggerThreshold(bool fromCacheExit) const
{
    std::uint32_t base = cfg_.hotThreshold;
    if (fromCacheExit && cfg_.exitThreshold != 0)
        base = cfg_.exitThreshold; // Mojo's lower exit threshold
    if (!cfg_.combine)
        return base;
    return base > cfg_.profWindow ? base - cfg_.profWindow : 1;
}

std::string
NetSelector::name() const
{
    const std::string base =
        cfg_.exitThreshold != 0 ? "Mojo" : "NET";
    return cfg_.combine ? base + "+comb" : base;
}

std::uint64_t
NetSelector::peakObservedTraceBytes() const
{
    return store_ ? store_->peakBytes() : 0;
}

std::uint64_t
NetSelector::markSweepRegions() const
{
    return store_ ? store_->sweepRegions() : 0;
}

std::uint64_t
NetSelector::markSweepMultiIterRegions() const
{
    return store_ ? store_->multiIterRegions() : 0;
}

void
NetSelector::startRecording(const BasicBlock &head)
{
    recording_ = true;
    recordPath_.clear();
    recordPath_.push_back(&head);
    recordInsts_ = head.instCount();
}

std::optional<RegionSpec>
NetSelector::finalizeRecording()
{
    recording_ = false;
    RSEL_ASSERT(!recordPath_.empty(), "recording cannot be empty");
    const Addr entry = recordPath_.front()->startAddr();

    if (!cfg_.combine) {
        RegionSpec spec;
        spec.kind = Region::Kind::Trace;
        spec.blocks = std::move(recordPath_);
        recordPath_.clear();
        return spec;
    }

    // Combination mode: this recording is one observed trace.
    const bool windowFull = store_->store(entry, recordPath_);
    recordPath_.clear();
    if (!windowFull)
        return std::nullopt;
    counters_.erase(entry); // recycled at T_start + T_prof (Fig. 13)
    return store_->combine(prog_, entry);
}

void
NetSelector::profile(const SelectorEvent &ev)
{
    // Only targets of taken backward branches and of code-cache
    // exits are allowed to begin a region (Section 2.1).
    if (!ev.viaTaken)
        return;
    const Addr tgt = ev.block->startAddr();
    const bool backward = tgt <= ev.branchAddr;
    if (!backward && !ev.fromCacheExit)
        return;

    Counter &counter = counters_[tgt];
    const std::uint32_t eventTrigger =
        triggerThreshold(ev.fromCacheExit);
    if (counter.trigger == 0)
        counter.trigger = eventTrigger;
    else
        counter.trigger = std::min(counter.trigger, eventTrigger);
    ++counter.count;
    maxCounters_ = std::max(maxCounters_, counters_.size());

    if (recording_ || counter.count < counter.trigger)
        return;

    if (!cfg_.combine) {
        counters_.erase(tgt); // counter recycled once the trace forms
        startRecording(*ev.block);
        return;
    }
    // Combination: record one observed trace per trigger until the
    // profiling window is full; the counter is recycled at combine.
    if (store_->observedCount(tgt) < cfg_.profWindow)
        startRecording(*ev.block);
}

std::optional<RegionSpec>
NetSelector::onInterpreted(const SelectorEvent &ev)
{
    std::optional<RegionSpec> result;

    if (recording_) {
        // A taken backward branch (target at or below the branch)
        // ends the trace *after* the branch's block; the size limit
        // ends it before the block that would overflow.
        const bool backwardTaken =
            ev.viaTaken && ev.block->startAddr() <= ev.branchAddr;
        const bool overflow =
            recordInsts_ + ev.block->instCount() > cfg_.maxTraceInsts;
        if (backwardTaken || overflow) {
            result = finalizeRecording();
        } else {
            recordPath_.push_back(ev.block);
            recordInsts_ += ev.block->instCount();
            return std::nullopt;
        }
    }

    // If the region just completed begins at this very block, the
    // driver will jump into it; profiling the same execution again
    // would double-count it.
    if (result && !result->blocks.empty() &&
        result->blocks.front()->id() == ev.block->id()) {
        return result;
    }

    profile(ev);
    return result;
}

std::optional<RegionSpec>
NetSelector::onCacheEnter(const BasicBlock &entry)
{
    (void)entry;
    // A taken branch that targets the start of another region ends
    // the trace being recorded (Section 2.1).
    if (recording_)
        return finalizeRecording();
    return std::nullopt;
}

void
NetSelector::onCacheDisruption(CacheDisruption kind)
{
    // Any disruption aborts the in-flight recording (the recorded
    // prefix may lead into a dropped translation) and releases the
    // stored observations; a full reset also forgets hotness.
    recording_ = false;
    recordPath_.clear();
    recordInsts_ = 0;
    if (store_)
        store_->clear();
    if (kind == CacheDisruption::Reset)
        counters_.clear();
}

} // namespace rsel
