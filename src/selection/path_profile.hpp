/**
 * @file
 * Shared edge-profiling machinery for the Section 5 related-work
 * selectors (BOA, Wiggins/Redstone).
 *
 * Both systems gather per-branch statistics while code is emulated
 * or instrumented, then *statically* construct a trace by following
 * each branch's most frequent target. PathProfile accumulates the
 * statistics; formMostLikelyPath() performs the walk.
 */

#ifndef RSEL_SELECTION_PATH_PROFILE_HPP
#define RSEL_SELECTION_PATH_PROFILE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Accumulated per-branch direction/target statistics. */
class PathProfile
{
  public:
    /**
     * Attribute an interpreted event to the previous interpreted
     * block's terminator. Call once per interpreted event, in
     * order; events following cache execution are ignored (the
     * chain is broken). Returns the previous block, for callers
     * that track additional state.
     */
    const BasicBlock *record(const SelectorEvent &event);

    /** Observed taken-count of a conditional block. */
    std::uint64_t takenCount(BlockId id) const;

    /** Observed not-taken count of a conditional block. */
    std::uint64_t notTakenCount(BlockId id) const;

    /**
     * Most frequently observed dynamic target of an indirect block,
     * or invalidAddr when nothing was observed.
     */
    Addr hottestIndirectTarget(BlockId id) const;

    /** True if the conditional's taken direction is more frequent. */
    bool prefersTaken(BlockId id) const;

    /** Number of distinct profiled branches (memory footprint). */
    std::size_t profiledBranches() const
    {
        return edges_.size() + indirect_.size();
    }

    /** Forget the previous block (the interpreted chain broke). */
    void breakChain() { lastBlock_ = nullptr; }

    /** Drop every accumulated statistic (full profiling reset). */
    void reset()
    {
        edges_.clear();
        indirect_.clear();
        lastBlock_ = nullptr;
    }

  private:
    struct EdgeProfile
    {
        std::uint64_t taken = 0;
        std::uint64_t notTaken = 0;
    };

    std::unordered_map<BlockId, EdgeProfile> edges_;
    std::unordered_map<BlockId, std::unordered_map<Addr, std::uint64_t>>
        indirect_;
    const BasicBlock *lastBlock_ = nullptr;
};

/**
 * Statically walk the most-likely path from `entry`: follow each
 * conditional toward its more frequent direction and each indirect
 * toward its hottest observed target. Stops at an existing region
 * head, on block revisit (cycle), at the size limit, at a halt, or
 * at an indirect branch with no profile.
 */
std::vector<const BasicBlock *>
formMostLikelyPath(const Program &prog, const CodeCache &cache,
                   const PathProfile &profile, const BasicBlock &entry,
                   std::uint32_t max_insts);

} // namespace rsel

#endif // RSEL_SELECTION_PATH_PROFILE_HPP
