#include "selection/compact_trace.hpp"

#include "program/program.hpp"
#include "support/error.hpp"

namespace rsel {

namespace {

// 2-bit branch codes from the paper's Figure 14.
constexpr std::uint64_t codeEnd = 0b00;      // end of trace
constexpr std::uint64_t codeIndirect = 0b01; // taken, target appended
constexpr std::uint64_t codeNotTaken = 0b10; // conditional not taken
constexpr std::uint64_t codeTaken = 0b11;    // taken, target in inst

constexpr unsigned addrBits = 64;

/** Hard cap so a corrupt bit string cannot loop a decoder forever. */
constexpr std::size_t maxDecodedBlocks = 1u << 20;

} // namespace

void
CompactTrace::appendBits(std::uint64_t value, unsigned nbits)
{
    for (unsigned i = 0; i < nbits; ++i) {
        const std::uint64_t bitIndex = bitLen_ + i;
        if (bitIndex / 8 >= bits_.size())
            bits_.push_back(0);
        if ((value >> i) & 1)
            bits_[bitIndex / 8] |=
                static_cast<std::uint8_t>(1u << (bitIndex % 8));
    }
    bitLen_ += nbits;
}

std::uint64_t
CompactTrace::readBits(std::uint64_t &cursor, unsigned nbits) const
{
    RSEL_ASSERT(cursor + nbits <= bitLen_,
                "compact trace bit stream underrun");
    std::uint64_t value = 0;
    for (unsigned i = 0; i < nbits; ++i) {
        const std::uint64_t bitIndex = cursor + i;
        if ((bits_[bitIndex / 8] >> (bitIndex % 8)) & 1)
            value |= std::uint64_t{1} << i;
    }
    cursor += nbits;
    return value;
}

CompactTrace
CompactTrace::encode(const std::vector<const BasicBlock *> &path)
{
    RSEL_ASSERT(!path.empty(), "cannot encode an empty trace");

    CompactTrace ct;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const BasicBlock *b = path[i];
        const BasicBlock *next = path[i + 1];
        switch (b->terminator()) {
          case BranchKind::None:
            // Fall-through block boundary: not a branch, no bits.
            RSEL_ASSERT(next->startAddr() == b->fallThroughAddr(),
                        "fall-through successor mismatch");
            break;
          case BranchKind::CondDirect:
            if (next->startAddr() == b->takenTarget()) {
                ct.appendBits(codeTaken, 2);
            } else {
                RSEL_ASSERT(next->startAddr() == b->fallThroughAddr(),
                            "conditional successor mismatch");
                ct.appendBits(codeNotTaken, 2);
            }
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            RSEL_ASSERT(next->startAddr() == b->takenTarget(),
                        "direct successor mismatch");
            ct.appendBits(codeTaken, 2);
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
          case BranchKind::Return:
            ct.appendBits(codeIndirect, 2);
            ct.appendBits(next->startAddr(), addrBits);
            break;
          case BranchKind::Halt:
            panic("a trace cannot continue past a halt");
        }
    }
    ct.appendBits(codeEnd, 2);
    ct.appendBits(path.back()->lastInstAddr(), addrBits);
    return ct;
}

std::vector<const BasicBlock *>
CompactTrace::decode(const Program &prog, Addr entryAddr) const
{
    RSEL_ASSERT(bitLen_ >= 2 + addrBits, "truncated compact trace");

    // The end marker is the tail of the bit string; read it first so
    // fall-through boundaries (which encode no bits) can be followed
    // without ambiguity.
    std::uint64_t tailCursor = bitLen_ - addrBits;
    const Addr endAddr = readBits(tailCursor, addrBits);

    const BasicBlock *current = prog.blockAtAddr(entryAddr);
    RSEL_ASSERT(current != nullptr, "trace entry is not a block");

    std::vector<const BasicBlock *> path{current};
    std::uint64_t cursor = 0;
    while (current->lastInstAddr() != endAddr) {
        RSEL_ASSERT(path.size() < maxDecodedBlocks,
                    "compact trace decode runaway");
        Addr nextAddr = invalidAddr;
        switch (current->terminator()) {
          case BranchKind::None:
            nextAddr = current->fallThroughAddr();
            break;
          case BranchKind::CondDirect: {
            const std::uint64_t code = readBits(cursor, 2);
            if (code == codeTaken) {
                nextAddr = current->takenTarget();
            } else {
                RSEL_ASSERT(code == codeNotTaken,
                            "unexpected branch code in compact trace");
                nextAddr = current->fallThroughAddr();
            }
            break;
          }
          case BranchKind::Jump:
          case BranchKind::Call: {
            const std::uint64_t code = readBits(cursor, 2);
            RSEL_ASSERT(code == codeTaken,
                        "direct branch must be encoded taken");
            nextAddr = current->takenTarget();
            break;
          }
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
          case BranchKind::Return: {
            const std::uint64_t code = readBits(cursor, 2);
            RSEL_ASSERT(code == codeIndirect,
                        "indirect branch must carry a target");
            nextAddr = readBits(cursor, addrBits);
            break;
          }
          case BranchKind::Halt:
            panic("decoded trace runs past a halt");
        }
        current = prog.blockAtAddr(nextAddr);
        RSEL_ASSERT(current != nullptr,
                    "decoded trace target is not a block");
        path.push_back(current);
    }

    // Sanity: all payload bits must be consumed up to the end marker.
    const std::uint64_t endMarker = readBits(cursor, 2);
    RSEL_ASSERT(endMarker == codeEnd, "missing end-of-trace marker");
    RSEL_ASSERT(cursor == bitLen_ - addrBits,
                "compact trace has trailing garbage");
    return path;
}

} // namespace rsel
