/**
 * @file
 * Results of one simulated run: every metric the paper evaluates.
 *
 * Metric definitions (paper Section 2.3):
 *  - hit rate: % of executed program instructions that execute from
 *    the code cache.
 *  - code expansion: program instructions copied into the cache.
 *  - region transitions: jumps between distinct regions in the cache.
 *  - spanned cycle ratio: % of regions including a branch to their
 *    own top.
 *  - executed cycle ratio: % of region executions ending with a
 *    branch to the region top.
 *  - X% cover set: smallest set of regions covering at least X% of
 *    program execution.
 *  - exit domination (Section 4.1): regions reachable only through
 *    one earlier region's exit, and the instructions they duplicate
 *    from that region.
 */

#ifndef RSEL_METRICS_SIM_RESULT_HPP
#define RSEL_METRICS_SIM_RESULT_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "resilience/recovery_stats.hpp"
#include "runtime/region.hpp"

namespace rsel {

/** Static and dynamic statistics of one cached region. */
struct RegionStats
{
    RegionId id = invalidRegion;
    Region::Kind kind = Region::Kind::Trace;
    Addr entryAddr = invalidAddr;
    std::uint32_t blockCount = 0;
    std::uint64_t instCount = 0;
    std::uint64_t byteSize = 0;
    std::uint32_t exitStubs = 0;
    bool spansCycle = false;
    /** Instructions executed from this region. */
    std::uint64_t executedInsts = 0;
    /** Times the region was entered (each entry = one execution). */
    std::uint64_t executions = 0;
    /** Executions that ended with a branch back to the top. */
    std::uint64_t cycleEnds = 0;
};

/** All metrics of one simulated run. */
struct SimResult
{
    /** Name of the selection algorithm ("NET", "LEI", ...). */
    std::string selector;
    /** Workload name (filled by the harness). */
    std::string workload;

    /** Dynamic block events consumed. */
    std::uint64_t events = 0;
    /** Instructions executed by the guest program. */
    std::uint64_t totalInsts = 0;
    /** Of those, instructions executed from the code cache. */
    std::uint64_t cachedInsts = 0;
    /** Of those, instructions executed by the interpreter. */
    std::uint64_t interpretedInsts = 0;

    /** Regions selected. */
    std::uint64_t regionCount = 0;
    /** Code expansion: instructions copied into the cache. */
    std::uint64_t expansionInsts = 0;
    /** Code bytes copied into the cache. */
    std::uint64_t expansionBytes = 0;
    /** Exit stubs created. */
    std::uint64_t exitStubs = 0;
    /** Estimated cache size (bytes + 10 per stub; Section 4.3.4). */
    std::uint64_t estimatedCacheBytes = 0;

    /** Modelled I-cache line accesses during cached execution. */
    std::uint64_t icacheAccesses = 0;
    /** Modelled I-cache line misses during cached execution. */
    std::uint64_t icacheMisses = 0;

    /** Bounded-cache statistics (all zero for unbounded runs). */
    std::uint64_t cacheCapacityBytes = 0; ///< 0 = unbounded
    std::uint64_t cacheEvictions = 0;     ///< regions evicted
    std::uint64_t cacheFlushes = 0;       ///< full flushes
    std::uint64_t cacheRegenerations = 0; ///< re-inserted entries
    std::uint64_t cacheLiveBytes = 0;     ///< final occupancy

    /** Jumps between distinct cached regions. */
    std::uint64_t regionTransitions = 0;
    /**
     * Distinct region-to-region links exercised — the link
     * bookkeeping a real cache pays for (paper footnote 9: "our
     * algorithms are very likely to reduce the number of such
     * links, as fewer regions are selected").
     */
    std::uint64_t interRegionLinks = 0;
    /** Region executions (entry count). */
    std::uint64_t regionExecutions = 0;
    /** Region executions that ended by a branch to the top. */
    std::uint64_t cycleTerminations = 0;
    /** Regions that statically span a cycle. */
    std::uint64_t spanningRegions = 0;

    /** 90% cover set size (regions), the paper's quality metric. */
    std::uint32_t coverSet90 = 0;
    /** True if all regions together cover less than 90%. */
    bool coverSetSaturated = false;

    /** High-water mark of live profiling counters (Figure 10). */
    std::uint64_t maxLiveCounters = 0;
    /** Peak bytes of stored observed traces (Figure 18). */
    std::uint64_t peakObservedTraceBytes = 0;
    /** Combined regions whose mark dataflow marked blocks. */
    std::uint64_t markSweepRegions = 0;
    /** Of those, regions needing a second or later sweep. */
    std::uint64_t markSweepMultiIterRegions = 0;

    /** Regions that are exit-dominated (Section 4.1). */
    std::uint64_t exitDominatedRegions = 0;
    /** Instructions duplicated between dominated/dominating pairs. */
    std::uint64_t exitDominatedDupInsts = 0;
    /**
     * Instructions selected into more than one region, counted once
     * per extra copy (the paper's "excessive code duplication").
     */
    std::uint64_t duplicatedInsts = 0;

    /** Section 4.4 optimization-opportunity structure counts. */
    std::uint64_t regionsWithInternalCycle = 0;
    /** Regions with a cycle excluding their entry (LICM-capable). */
    std::uint64_t licmCapableRegions = 0;
    /** Regions containing an if-else with both sides present. */
    std::uint64_t dualSplitRegions = 0;
    /** Internal join blocks across all regions. */
    std::uint64_t joinBlocksTotal = 0;

    /**
     * Fault-injection and graceful-degradation counters (all zero
     * when no fault plan was armed).
     */
    resilience::RecoveryStats recovery;

    /** Per-region statistics, indexed by RegionId. */
    std::vector<RegionStats> regions;

    /** Exit-domination pairs: (dominated region, its dominator). */
    std::vector<std::pair<RegionId, RegionId>> exitDominationPairs;

    /** Hit rate in [0, 1]. */
    double hitRate() const;
    /** Fraction of regions that span a cycle, in [0, 1]. */
    double spannedCycleRatio() const;
    /** Fraction of region executions ending by cycle, in [0, 1]. */
    double executedCycleRatio() const;
    /** Average region size in instructions. */
    double avgRegionInsts() const;
    /** Fraction of regions that are exit-dominated. */
    double exitDominatedRegionRatio() const;
    /** Fraction of selected instructions that are exit-dominated
     *  duplication (Figure 11). */
    double exitDominatedDupRatio() const;
    /** Fraction of selected instructions that are extra copies. */
    double duplicationRatio() const;
    /** Observed-trace memory as a fraction of the estimated cache
     *  size (Figure 18). */
    double observedMemoryRatio() const;
    /** Modelled I-cache miss rate of cached execution, in [0, 1]. */
    double icacheMissRate() const;

    /**
     * Smallest number of regions covering at least `fraction` of
     * total executed instructions; regionCount when saturated.
     */
    std::uint32_t coverSet(double fraction) const;

    /**
     * Internal-accounting closure check, the testing subsystem's
     * conservation oracle: instruction counts must split exactly
     * between interpreter and cache, per-region statistics must sum
     * to the run totals, and derived counters must stay within their
     * bounds. @return an empty string when every identity holds, or
     * a description of the first violated identity. Only meaningful
     * on a directly finished run (merged results clear the
     * per-region vectors this cross-checks).
     */
    std::string conservationError() const;

    /**
     * Fold another run's counters into this result, for suite-level
     * aggregation of results produced independently (possibly on
     * different threads — each run owns its collector, so merging
     * finished SimResults is the only cross-thread aggregation the
     * metric stack needs, and it is data-race free by construction).
     *
     * Additive counters (events, instructions, regions, expansion,
     * transitions, cache traffic, ...) sum; high-water marks
     * (maxLiveCounters, peakObservedTraceBytes) take the maximum of
     * the two runs, modelling independent systems rather than one
     * shared profiler. Derived ratios (hitRate() etc.) then read
     * correctly from the merged counters. Per-region vectors,
     * exit-domination pairs and cover-set fields are NOT merged —
     * they are meaningless across distinct caches — and are cleared
     * on the merged result. selector/workload keep their value when
     * equal and become "mixed" otherwise.
     */
    SimResult &mergeFrom(const SimResult &other);
};

/** mergeFrom() folded over `parts`; default SimResult when empty. */
SimResult mergeResults(const std::vector<SimResult> &parts);

} // namespace rsel

#endif // RSEL_METRICS_SIM_RESULT_HPP
