#include "metrics/sim_result.hpp"

#include <algorithm>

namespace rsel {

double
SimResult::hitRate() const
{
    if (totalInsts == 0)
        return 0.0;
    return static_cast<double>(cachedInsts) /
           static_cast<double>(totalInsts);
}

double
SimResult::spannedCycleRatio() const
{
    if (regionCount == 0)
        return 0.0;
    return static_cast<double>(spanningRegions) /
           static_cast<double>(regionCount);
}

double
SimResult::executedCycleRatio() const
{
    if (regionExecutions == 0)
        return 0.0;
    return static_cast<double>(cycleTerminations) /
           static_cast<double>(regionExecutions);
}

double
SimResult::avgRegionInsts() const
{
    if (regionCount == 0)
        return 0.0;
    return static_cast<double>(expansionInsts) /
           static_cast<double>(regionCount);
}

double
SimResult::exitDominatedRegionRatio() const
{
    if (regionCount == 0)
        return 0.0;
    return static_cast<double>(exitDominatedRegions) /
           static_cast<double>(regionCount);
}

double
SimResult::exitDominatedDupRatio() const
{
    if (expansionInsts == 0)
        return 0.0;
    return static_cast<double>(exitDominatedDupInsts) /
           static_cast<double>(expansionInsts);
}

double
SimResult::icacheMissRate() const
{
    if (icacheAccesses == 0)
        return 0.0;
    return static_cast<double>(icacheMisses) /
           static_cast<double>(icacheAccesses);
}

double
SimResult::duplicationRatio() const
{
    if (expansionInsts == 0)
        return 0.0;
    return static_cast<double>(duplicatedInsts) /
           static_cast<double>(expansionInsts);
}

double
SimResult::observedMemoryRatio() const
{
    if (estimatedCacheBytes == 0)
        return 0.0;
    return static_cast<double>(peakObservedTraceBytes) /
           static_cast<double>(estimatedCacheBytes);
}

std::uint32_t
SimResult::coverSet(double fraction) const
{
    std::vector<std::uint64_t> executed;
    executed.reserve(regions.size());
    for (const RegionStats &r : regions)
        executed.push_back(r.executedInsts);
    std::sort(executed.begin(), executed.end(),
              std::greater<std::uint64_t>());

    const double target = fraction * static_cast<double>(totalInsts);
    double sum = 0.0;
    std::uint32_t count = 0;
    for (std::uint64_t e : executed) {
        if (sum >= target)
            return count;
        sum += static_cast<double>(e);
        ++count;
    }
    // All regions together may still be short of the target; the
    // caller can detect this via coverSetSaturated.
    return count;
}

std::string
SimResult::conservationError() const
{
    auto err = [](const std::string &what, std::uint64_t lhs,
                  std::uint64_t rhs) {
        return what + " (" + std::to_string(lhs) + " vs " +
               std::to_string(rhs) + ")";
    };

    if (cachedInsts + interpretedInsts != totalInsts)
        return err("cached + interpreted != total instructions",
                   cachedInsts + interpretedInsts, totalInsts);
    if (totalInsts < events)
        return err("fewer instructions than events (blocks are "
                   "non-empty)",
                   totalInsts, events);
    if (regionCount != regions.size())
        return err("regionCount != per-region stats size", regionCount,
                   regions.size());
    if (cachedInsts > 0 && regionCount == 0)
        return err("cached instructions without any region",
                   cachedInsts, regionCount);
    if (cycleTerminations > regionExecutions)
        return err("more cycle terminations than region executions",
                   cycleTerminations, regionExecutions);
    if (!coverSetSaturated && coverSet90 > regionCount)
        return err("cover set larger than region count", coverSet90,
                   regionCount);

    std::uint64_t sumExecuted = 0, sumEntries = 0, sumCycleEnds = 0;
    std::uint64_t sumInsts = 0, sumBytes = 0, sumStubs = 0;
    std::uint64_t sumSpanning = 0;
    for (const RegionStats &r : regions) {
        sumExecuted += r.executedInsts;
        sumEntries += r.executions;
        sumCycleEnds += r.cycleEnds;
        sumInsts += r.instCount;
        sumBytes += r.byteSize;
        sumStubs += r.exitStubs;
        sumSpanning += r.spansCycle ? 1 : 0;
        if (r.cycleEnds > r.executions)
            return err("region " + std::to_string(r.id) +
                           ": more cycle ends than executions",
                       r.cycleEnds, r.executions);
    }
    if (sumExecuted != cachedInsts)
        return err("per-region executed instructions != cachedInsts",
                   sumExecuted, cachedInsts);
    if (sumEntries != regionExecutions)
        return err("per-region executions != regionExecutions",
                   sumEntries, regionExecutions);
    if (sumCycleEnds != cycleTerminations)
        return err("per-region cycle ends != cycleTerminations",
                   sumCycleEnds, cycleTerminations);
    if (sumInsts != expansionInsts)
        return err("per-region instructions != expansionInsts",
                   sumInsts, expansionInsts);
    if (sumBytes != expansionBytes)
        return err("per-region bytes != expansionBytes", sumBytes,
                   expansionBytes);
    if (sumStubs != exitStubs)
        return err("per-region exit stubs != exitStubs", sumStubs,
                   exitStubs);
    if (sumSpanning != spanningRegions)
        return err("per-region spanning flags != spanningRegions",
                   sumSpanning, spanningRegions);
    if (icacheMisses > icacheAccesses)
        return err("more I-cache misses than accesses", icacheMisses,
                   icacheAccesses);

    // Fault-injection closure: every injected fault is exactly one
    // of the four kinds, and recovery bookkeeping stays within the
    // fault counts that can cause it.
    const std::uint64_t faultKinds = recovery.translationFailures +
                                     recovery.blockInvalidations +
                                     recovery.flushStorms +
                                     recovery.selectorResets;
    if (recovery.faultsInjected != faultKinds)
        return err("injected faults != sum of fault kinds",
                   recovery.faultsInjected, faultKinds);
    if (recovery.retries > recovery.translationFailures)
        return err("more recoveries than translation failures",
                   recovery.retries, recovery.translationFailures);
    if (recovery.retranslations > recovery.regionsInvalidated)
        return err("more retranslations than invalidated regions",
                   recovery.retranslations,
                   recovery.regionsInvalidated);
    return "";
}

SimResult &
SimResult::mergeFrom(const SimResult &other)
{
    auto label = [](std::string &mine, const std::string &theirs) {
        if (mine != theirs)
            mine = mine.empty() ? theirs
                                : (theirs.empty() ? mine : "mixed");
    };
    label(selector, other.selector);
    label(workload, other.workload);

    events += other.events;
    totalInsts += other.totalInsts;
    cachedInsts += other.cachedInsts;
    interpretedInsts += other.interpretedInsts;

    regionCount += other.regionCount;
    expansionInsts += other.expansionInsts;
    expansionBytes += other.expansionBytes;
    exitStubs += other.exitStubs;
    estimatedCacheBytes += other.estimatedCacheBytes;

    icacheAccesses += other.icacheAccesses;
    icacheMisses += other.icacheMisses;

    cacheCapacityBytes += other.cacheCapacityBytes;
    cacheEvictions += other.cacheEvictions;
    cacheFlushes += other.cacheFlushes;
    cacheRegenerations += other.cacheRegenerations;
    cacheLiveBytes += other.cacheLiveBytes;

    regionTransitions += other.regionTransitions;
    interRegionLinks += other.interRegionLinks;
    regionExecutions += other.regionExecutions;
    cycleTerminations += other.cycleTerminations;
    spanningRegions += other.spanningRegions;

    maxLiveCounters = std::max(maxLiveCounters, other.maxLiveCounters);
    peakObservedTraceBytes =
        std::max(peakObservedTraceBytes, other.peakObservedTraceBytes);
    markSweepRegions += other.markSweepRegions;
    markSweepMultiIterRegions += other.markSweepMultiIterRegions;

    exitDominatedRegions += other.exitDominatedRegions;
    exitDominatedDupInsts += other.exitDominatedDupInsts;
    duplicatedInsts += other.duplicatedInsts;

    regionsWithInternalCycle += other.regionsWithInternalCycle;
    licmCapableRegions += other.licmCapableRegions;
    dualSplitRegions += other.dualSplitRegions;
    joinBlocksTotal += other.joinBlocksTotal;

    recovery.mergeFrom(other.recovery);

    // Per-cache structure does not compose across runs.
    coverSet90 = 0;
    coverSetSaturated = false;
    regions.clear();
    exitDominationPairs.clear();
    return *this;
}

SimResult
mergeResults(const std::vector<SimResult> &parts)
{
    SimResult merged;
    for (const SimResult &part : parts)
        merged.mergeFrom(part);
    return merged;
}

} // namespace rsel
