/**
 * @file
 * Online metric collection for a simulated dynamic optimizer.
 *
 * The DynOptSystem feeds the collector one call per executed block
 * plus region lifecycle events; finalize() folds in the static cache
 * contents and selector-side counters and runs the exit-domination
 * analysis (paper Section 4.1) over the dynamic edge profile.
 *
 * Threading: a collector belongs to exactly one DynOptSystem and is
 * confined to the thread driving it — it holds no static or global
 * state, so any number of collectors may run concurrently. Cross-run
 * aggregation happens only on finished SimResults (see
 * SimResult::mergeFrom), never on live collectors.
 */

#ifndef RSEL_METRICS_METRICS_COLLECTOR_HPP
#define RSEL_METRICS_METRICS_COLLECTOR_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/sim_result.hpp"
#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Accumulates run metrics; produces a SimResult. */
class MetricsCollector
{
  public:
    /**
     * Record an executed control-flow edge (any kind). The profile
     * is a *set* per destination, so recording is idempotent; a
     * small direct-mapped filter of recently recorded edges skips
     * the hash-set insert for the overwhelmingly common repeated
     * edge without changing the recorded profile.
     */
    void
    onEdge(BlockId src, BlockId dst)
    {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(src) << 32) | dst;
        std::uint64_t &slot =
            edgeSeen_[(key * 0x9E3779B97F4A7C15ull) >> edgeSeenShift];
        if (slot == key + 1)
            return; // already recorded (insert would be a no-op)
        slot = key + 1; // +1 keeps key 0 distinct from "empty"
        recordEdge(src, dst);
    }

    // The per-block and region-lifecycle notifications below run
    // once per dynamic event on the simulation's hottest path, so
    // they are defined inline: DynOptSystem's batch loop folds them
    // into plain counter updates instead of cross-library calls.

    /** A block executed in the interpreter. */
    void
    onInterpretedBlock(const BasicBlock &block)
    {
        interpInsts_ += block.instCount();
    }

    /** A block executed from the code cache. */
    void
    onCachedBlock(const BasicBlock &block, RegionId region)
    {
        cachedInsts_ += block.instCount();
        perRegion(region).insts += block.instCount();
    }

    /** A region execution began (entry or cycle restart). */
    void
    onRegionEntered(RegionId region)
    {
        ++entries_;
        ++perRegion(region).entries;
    }

    /** A region execution ended. @param byCycle branch-to-top end. */
    void
    onRegionExecutionEnd(RegionId region, bool byCycle)
    {
        ++terminations_;
        if (byCycle) {
            ++cycleTerminations_;
            ++perRegion(region).cycleEnds;
        }
    }

    /** A direct jump between two distinct cached regions. */
    void
    onRegionTransition(RegionId from, RegionId to)
    {
        ++transitions_;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(from) << 32) | to;
        // Same trick as onEdge: linkPairs_ is a set, so a repeated
        // pair's insert is a no-op — a direct-mapped filter of
        // recent pairs skips the hash insert for the common case of
        // control bouncing between the same two regions.
        std::uint64_t &slot =
            linkSeen_[(key * 0x9E3779B97F4A7C15ull) >>
                      edgeSeenShift];
        if (slot == key + 1)
            return;
        slot = key + 1;
        linkPairs_.insert(key);
    }

    /** One dynamic block event was consumed. */
    void onEvent() { ++events_; }

    /** `n` dynamic block events were consumed (batch bulk form). */
    void addEvents(std::uint64_t n) { events_ += n; }

    /**
     * Bulk form of a run of cached trace execution: `insts` guest
     * instructions executed inside `region`, with `restarts`
     * cycle-restarts (each ends one region execution by cycle and
     * immediately begins the next). Equivalent to the matching
     * sequence of onCachedBlock/onRegionExecutionEnd/onRegionEntered
     * calls — the batch dispatch path accumulates locally and folds
     * the run in with one call.
     */
    void
    addCachedRun(RegionId region, std::uint64_t insts,
                 std::uint64_t restarts)
    {
        cachedInsts_ += insts;
        entries_ += restarts;
        terminations_ += restarts;
        cycleTerminations_ += restarts;
        PerRegion &pr = perRegion(region);
        pr.insts += insts;
        pr.entries += restarts;
        pr.cycleEnds += restarts;
    }

    /** Testing probe: true if onEdge(src, dst) was ever recorded. */
    bool sawEdge(BlockId src, BlockId dst) const;

    /**
     * Produce the final result.
     * @param prog     the simulated program.
     * @param cache    the final code cache.
     * @param selector the selector (for profiling-overhead metrics).
     */
    SimResult finalize(const Program &prog, const CodeCache &cache,
                       const RegionSelector &selector) const;

  private:
    struct PerRegion
    {
        std::uint64_t insts = 0;
        std::uint64_t entries = 0;
        std::uint64_t cycleEnds = 0;
    };

    PerRegion &
    perRegion(RegionId region)
    {
        if (region >= regions_.size())
            regions_.resize(region + 1);
        return regions_[region];
    }

    /**
     * Exit-domination analysis. For each region S: S is
     * exit-dominated if the only executed predecessor of its entry
     * outside S is a block of an earlier region R whose transfer to
     * S's entry exits R. Returns the count and the duplicated
     * instructions between each dominated region and its dominator.
     */
    void analyzeExitDomination(const Program &prog,
                               const CodeCache &cache,
                               SimResult &result) const;

    /** True if R keeps control when `from` transfers to `to`. */
    static bool isInternalTransfer(const Region &r,
                                   const BasicBlock &from,
                                   const BasicBlock &to);

    /** Slow path of onEdge(): the authoritative set insert. */
    void recordEdge(BlockId src, BlockId dst);

    static constexpr std::size_t edgeSeenSlots = 4096;
    static constexpr unsigned edgeSeenShift = 52; // 64 - log2(slots)

    /** Direct-mapped recently-recorded-edge filter: key+1 or 0. */
    std::vector<std::uint64_t> edgeSeen_ =
        std::vector<std::uint64_t>(edgeSeenSlots, 0);

    /** Direct-mapped recently-seen region-link filter: key+1 or 0. */
    std::vector<std::uint64_t> linkSeen_ =
        std::vector<std::uint64_t>(edgeSeenSlots, 0);

    std::uint64_t events_ = 0;
    std::uint64_t interpInsts_ = 0;
    std::uint64_t cachedInsts_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t entries_ = 0;
    std::uint64_t terminations_ = 0;
    std::uint64_t cycleTerminations_ = 0;
    std::vector<PerRegion> regions_;
    /** entry block -> executed predecessor blocks. */
    std::unordered_map<BlockId, std::unordered_set<BlockId>> preds_;
    /** Distinct (from, to) region pairs that transitioned — the
     *  links a real cache maintains (paper footnote 9). */
    std::unordered_set<std::uint64_t> linkPairs_;
};

} // namespace rsel

#endif // RSEL_METRICS_METRICS_COLLECTOR_HPP
