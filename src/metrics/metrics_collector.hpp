/**
 * @file
 * Online metric collection for a simulated dynamic optimizer.
 *
 * The DynOptSystem feeds the collector one call per executed block
 * plus region lifecycle events; finalize() folds in the static cache
 * contents and selector-side counters and runs the exit-domination
 * analysis (paper Section 4.1) over the dynamic edge profile.
 *
 * Threading: a collector belongs to exactly one DynOptSystem and is
 * confined to the thread driving it — it holds no static or global
 * state, so any number of collectors may run concurrently. Cross-run
 * aggregation happens only on finished SimResults (see
 * SimResult::mergeFrom), never on live collectors.
 */

#ifndef RSEL_METRICS_METRICS_COLLECTOR_HPP
#define RSEL_METRICS_METRICS_COLLECTOR_HPP

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/sim_result.hpp"
#include "selection/selector.hpp"

namespace rsel {

class Program;
class CodeCache;

/** Accumulates run metrics; produces a SimResult. */
class MetricsCollector
{
  public:
    /** Record an executed control-flow edge (any kind). */
    void onEdge(BlockId src, BlockId dst);

    /** A block executed in the interpreter. */
    void onInterpretedBlock(const BasicBlock &block);

    /** A block executed from the code cache. */
    void onCachedBlock(const BasicBlock &block, RegionId region);

    /** A region execution began (entry or cycle restart). */
    void onRegionEntered(RegionId region);

    /** A region execution ended. @param byCycle branch-to-top end. */
    void onRegionExecutionEnd(RegionId region, bool byCycle);

    /** A direct jump between two distinct cached regions. */
    void onRegionTransition(RegionId from, RegionId to);

    /** One dynamic block event was consumed. */
    void onEvent() { ++events_; }

    /**
     * Produce the final result.
     * @param prog     the simulated program.
     * @param cache    the final code cache.
     * @param selector the selector (for profiling-overhead metrics).
     */
    SimResult finalize(const Program &prog, const CodeCache &cache,
                       const RegionSelector &selector) const;

  private:
    struct PerRegion
    {
        std::uint64_t insts = 0;
        std::uint64_t entries = 0;
        std::uint64_t cycleEnds = 0;
    };

    PerRegion &perRegion(RegionId region);

    /**
     * Exit-domination analysis. For each region S: S is
     * exit-dominated if the only executed predecessor of its entry
     * outside S is a block of an earlier region R whose transfer to
     * S's entry exits R. Returns the count and the duplicated
     * instructions between each dominated region and its dominator.
     */
    void analyzeExitDomination(const Program &prog,
                               const CodeCache &cache,
                               SimResult &result) const;

    /** True if R keeps control when `from` transfers to `to`. */
    static bool isInternalTransfer(const Region &r,
                                   const BasicBlock &from,
                                   const BasicBlock &to);

    std::uint64_t events_ = 0;
    std::uint64_t interpInsts_ = 0;
    std::uint64_t cachedInsts_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t entries_ = 0;
    std::uint64_t terminations_ = 0;
    std::uint64_t cycleTerminations_ = 0;
    std::vector<PerRegion> regions_;
    /** entry block -> executed predecessor blocks. */
    std::unordered_map<BlockId, std::unordered_set<BlockId>> preds_;
    /** Distinct (from, to) region pairs that transitioned — the
     *  links a real cache maintains (paper footnote 9). */
    std::unordered_set<std::uint64_t> linkPairs_;
};

} // namespace rsel

#endif // RSEL_METRICS_METRICS_COLLECTOR_HPP
