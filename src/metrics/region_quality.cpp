#include "metrics/region_quality.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "program/program.hpp"

namespace rsel {

namespace {

/**
 * Kosaraju strongly-connected components over a small adjacency
 * list. Returns the component id of every node.
 */
std::vector<std::size_t>
stronglyConnectedComponents(
    const std::vector<std::vector<std::size_t>> &succs)
{
    const std::size_t n = succs.size();
    std::vector<std::vector<std::size_t>> preds(n);
    for (std::size_t u = 0; u < n; ++u)
        for (std::size_t v : succs[u])
            preds[v].push_back(u);

    // First pass: finish order via iterative DFS.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<std::uint8_t> seen(n, 0);
    for (std::size_t root = 0; root < n; ++root) {
        if (seen[root])
            continue;
        std::vector<std::pair<std::size_t, std::size_t>> stack{
            {root, 0}};
        seen[root] = 1;
        while (!stack.empty()) {
            auto &[node, next] = stack.back();
            if (next < succs[node].size()) {
                const std::size_t child = succs[node][next++];
                if (!seen[child]) {
                    seen[child] = 1;
                    stack.emplace_back(child, 0);
                }
            } else {
                order.push_back(node);
                stack.pop_back();
            }
        }
    }

    // Second pass: components on the transposed graph.
    std::vector<std::size_t> component(n, n);
    std::size_t nextComponent = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (component[*it] != n)
            continue;
        std::vector<std::size_t> stack{*it};
        component[*it] = nextComponent;
        while (!stack.empty()) {
            const std::size_t node = stack.back();
            stack.pop_back();
            for (std::size_t p : preds[node]) {
                if (component[p] == n) {
                    component[p] = nextComponent;
                    stack.push_back(p);
                }
            }
        }
        ++nextComponent;
    }
    return component;
}

} // namespace

RegionQuality
analyzeRegionQuality(const Region &region, const Program &prog)
{
    (void)prog;
    const auto &blocks = region.blocks();
    std::unordered_map<Addr, std::size_t> indexOf;
    for (std::size_t i = 0; i < blocks.size(); ++i)
        indexOf.emplace(blocks[i]->startAddr(), i);

    // Build the internal edge list matching Region::step semantics.
    std::vector<std::vector<std::size_t>> succs(blocks.size());
    auto addEdge = [&](std::size_t from, Addr target) -> bool {
        auto it = indexOf.find(target);
        if (it == indexOf.end())
            return false;
        succs[from].push_back(it->second);
        return true;
    };

    RegionQuality q;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const BasicBlock *b = blocks[i];
        if (region.kind() == Region::Kind::Trace) {
            // Recorded path plus the branch-to-top link.
            if (i + 1 < blocks.size())
                addEdge(i, blocks[i + 1]->startAddr());
            if (!isIndirect(b->terminator()) &&
                b->takenTarget() == region.entryAddr() &&
                (i + 1 >= blocks.size() ||
                 blocks[i + 1]->startAddr() != region.entryAddr())) {
                addEdge(i, region.entryAddr());
            }
            continue;
        }
        // MultiPath: every static successor edge between members.
        bool takenIn = false, fallIn = false;
        switch (b->terminator()) {
          case BranchKind::CondDirect:
            takenIn = addEdge(i, b->takenTarget());
            fallIn = addEdge(i, b->fallThroughAddr());
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            addEdge(i, b->takenTarget());
            break;
          case BranchKind::None:
            addEdge(i, b->fallThroughAddr());
            break;
          default:
            break; // indirect targets are not statically known
        }
        if (takenIn && fallIn)
            ++q.dualSuccessorSplits;
    }

    // Joins and edge count.
    std::vector<std::uint32_t> predCount(blocks.size(), 0);
    for (std::size_t u = 0; u < succs.size(); ++u) {
        q.internalEdges += static_cast<std::uint32_t>(succs[u].size());
        for (std::size_t v : succs[u])
            ++predCount[v];
    }
    for (std::uint32_t c : predCount)
        if (c >= 2)
            ++q.joinBlocks;

    // Cycles via SCC: a component is cyclic when it has more than
    // one node or a self-edge.
    const std::vector<std::size_t> component =
        stronglyConnectedComponents(succs);
    std::unordered_map<std::size_t, std::size_t> componentSize;
    for (std::size_t c : component)
        ++componentSize[c];
    std::vector<std::uint8_t> selfLoop(blocks.size(), 0);
    for (std::size_t u = 0; u < succs.size(); ++u)
        for (std::size_t v : succs[u])
            if (v == u)
                selfLoop[u] = 1;

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const bool cyclic =
            componentSize[component[i]] > 1 || selfLoop[i];
        if (!cyclic)
            continue;
        q.hasInternalCycle = true;
        // Entry is index 0: a cycle whose component excludes it
        // leaves in-region code above the loop to hoist invariant
        // instructions to.
        if (component[i] != component[0])
            q.licmCapable = true;
    }
    return q;
}

} // namespace rsel
