#include "metrics/metrics_collector.hpp"

#include <algorithm>

#include "metrics/region_quality.hpp"
#include "program/program.hpp"
#include "runtime/code_cache.hpp"
#include "support/error.hpp"

namespace rsel {

void
MetricsCollector::recordEdge(BlockId src, BlockId dst)
{
    preds_[dst].insert(src);
}

bool
MetricsCollector::sawEdge(BlockId src, BlockId dst) const
{
    const auto it = preds_.find(dst);
    return it != preds_.end() && it->second.count(src) != 0;
}

bool
MetricsCollector::isInternalTransfer(const Region &r,
                                     const BasicBlock &from,
                                     const BasicBlock &to)
{
    if (!r.containsBlock(from.id()))
        return false;
    if (r.kind() == Region::Kind::MultiPath)
        return r.containsBlock(to.id());
    // Trace: only the recorded next block or a branch to the top
    // keeps control inside.
    if (to.startAddr() == r.entryAddr())
        return true;
    const auto &blocks = r.blocks();
    for (std::size_t i = 0; i + 1 < blocks.size(); ++i) {
        if (blocks[i]->id() == from.id())
            return blocks[i + 1]->id() == to.id();
    }
    return false;
}

void
MetricsCollector::analyzeExitDomination(const Program &prog,
                                        const CodeCache &cache,
                                        SimResult &result) const
{
    // Index: block -> regions containing it, in selection order.
    std::unordered_map<BlockId, std::vector<RegionId>> blockRegions;
    for (const Region &r : cache.regions())
        for (const BasicBlock *b : r.blocks())
            blockRegions[b->id()].push_back(r.id());

    for (const Region &s : cache.regions()) {
        const BasicBlock &entry = s.entryBlock();
        auto predsIt = preds_.find(entry.id());
        if (predsIt == preds_.end())
            continue;

        // Executed predecessors of S's entry that are outside S.
        const BasicBlock *outside = nullptr;
        bool multiple = false;
        for (BlockId p : predsIt->second) {
            if (s.containsBlock(p))
                continue;
            if (outside != nullptr) {
                multiple = true;
                break;
            }
            outside = &prog.block(p);
        }
        if (multiple || outside == nullptr)
            continue;

        // The unique outside predecessor must be the exit block of
        // an earlier-selected region.
        auto regIt = blockRegions.find(outside->id());
        if (regIt == blockRegions.end())
            continue;
        const Region *dominator = nullptr;
        for (RegionId rid : regIt->second) {
            if (rid >= s.id())
                break; // selection order: only earlier regions
            const Region &r = cache.region(rid);
            if (!isInternalTransfer(r, *outside, entry)) {
                dominator = &r;
                break;
            }
        }
        if (dominator == nullptr)
            continue;

        ++result.exitDominatedRegions;
        result.exitDominationPairs.emplace_back(s.id(),
                                                dominator->id());
        for (const BasicBlock *b : s.blocks())
            if (dominator->containsBlock(b->id()))
                result.exitDominatedDupInsts += b->instCount();
    }
}

SimResult
MetricsCollector::finalize(const Program &prog, const CodeCache &cache,
                           const RegionSelector &selector) const
{
    SimResult res;
    res.selector = selector.name();
    res.events = events_;
    res.cachedInsts = cachedInsts_;
    res.interpretedInsts = interpInsts_;
    res.totalInsts = cachedInsts_ + interpInsts_;

    res.regionCount = cache.regionCount();
    res.expansionInsts = cache.totalInstsCopied();
    res.expansionBytes = cache.totalBytesCopied();
    res.exitStubs = cache.totalExitStubs();
    res.estimatedCacheBytes = cache.estimatedSizeBytes();
    res.cacheCapacityBytes = cache.limits().capacityBytes;
    res.cacheEvictions = cache.evictions();
    res.cacheFlushes = cache.flushes();
    res.cacheRegenerations = cache.regenerations();
    res.cacheLiveBytes = cache.liveBytes();

    res.regionTransitions = transitions_;
    res.interRegionLinks = linkPairs_.size();
    res.regionExecutions = entries_;
    res.cycleTerminations = cycleTerminations_;

    res.maxLiveCounters = selector.maxLiveCounters();
    res.peakObservedTraceBytes = selector.peakObservedTraceBytes();
    res.markSweepRegions = selector.markSweepRegions();
    res.markSweepMultiIterRegions = selector.markSweepMultiIterRegions();

    res.regions.reserve(cache.regionCount());
    for (const Region &r : cache.regions()) {
        RegionStats stats;
        stats.id = r.id();
        stats.kind = r.kind();
        stats.entryAddr = r.entryAddr();
        stats.blockCount = static_cast<std::uint32_t>(r.blocks().size());
        stats.instCount = r.instCount();
        stats.byteSize = r.byteSize();
        stats.exitStubs = r.exitStubCount();
        stats.spansCycle = r.spansCycle();
        if (r.id() < regions_.size()) {
            stats.executedInsts = regions_[r.id()].insts;
            stats.executions = regions_[r.id()].entries;
            stats.cycleEnds = regions_[r.id()].cycleEnds;
        }
        if (stats.spansCycle)
            ++res.spanningRegions;
        res.regions.push_back(stats);

        const RegionQuality quality = analyzeRegionQuality(r, prog);
        if (quality.hasInternalCycle)
            ++res.regionsWithInternalCycle;
        if (quality.licmCapable)
            ++res.licmCapableRegions;
        if (quality.dualSuccessorSplits > 0)
            ++res.dualSplitRegions;
        res.joinBlocksTotal += quality.joinBlocks;
    }

    // Duplication: every copy of a block beyond the first.
    {
        std::unordered_map<BlockId, std::uint32_t> copies;
        for (const Region &r : cache.regions())
            for (const BasicBlock *b : r.blocks())
                ++copies[b->id()];
        for (const auto &[blockId, count] : copies) {
            if (count > 1) {
                res.duplicatedInsts +=
                    (count - 1) * prog.block(blockId).instCount();
            }
        }
    }

    res.coverSet90 = res.coverSet(0.90);
    double covered = 0.0;
    for (const RegionStats &r : res.regions)
        covered += static_cast<double>(r.executedInsts);
    res.coverSetSaturated =
        covered < 0.90 * static_cast<double>(res.totalInsts);

    analyzeExitDomination(prog, cache, res);
    return res;
}

} // namespace rsel
