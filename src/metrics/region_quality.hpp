/**
 * @file
 * Static optimization-opportunity analysis of cached regions
 * (paper Section 4.4, "Effect on Optimization").
 *
 * The paper argues multi-path regions optimize better for three
 * reasons; this analyzer quantifies the structural preconditions of
 * the first two:
 *
 *  - "When a region contains both sides of an if-else statement,
 *    redundancy elimination does not need to produce compensation
 *    code" — counted as splits whose both successors are inside the
 *    region.
 *  - "When a region contains a cycle, loop optimizations can be
 *    performed ... even a trace that spans a cycle cannot perform
 *    [loop-invariant code motion], because it has nowhere outside
 *    the cycle to move an instruction" — a region is LICM-capable
 *    when it contains a cycle that excludes the region entry, i.e.
 *    in-region code exists "above" the cycle to host hoisted
 *    instructions.
 */

#ifndef RSEL_METRICS_REGION_QUALITY_HPP
#define RSEL_METRICS_REGION_QUALITY_HPP

#include <cstdint>

#include "runtime/region.hpp"

namespace rsel {

class Program;

/** Structural optimization opportunities of one region. */
struct RegionQuality
{
    /** The region's internal control flow contains a cycle. */
    bool hasInternalCycle = false;
    /**
     * A cycle exists that does not include the region entry, so the
     * region has a place to hoist loop-invariant code to.
     */
    bool licmCapable = false;
    /** Conditional splits with both successors inside the region
     *  (if-else with both sides present — compensation-free
     *  redundancy elimination). */
    std::uint32_t dualSuccessorSplits = 0;
    /** Blocks with two or more internal predecessors (join points
     *  the optimizer can reason about locally). */
    std::uint32_t joinBlocks = 0;
    /** Internal control-flow edges. */
    std::uint32_t internalEdges = 0;
};

/**
 * Analyze one region's internal CFG. Internal edges are the static
 * successor edges (taken target / fall-through) between member
 * blocks, restricted for traces to the recorded layout plus the
 * branch-to-top link — matching the Region::step semantics.
 */
RegionQuality analyzeRegionQuality(const Region &region,
                                   const Program &prog);

} // namespace rsel

#endif // RSEL_METRICS_REGION_QUALITY_HPP
