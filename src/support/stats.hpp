/**
 * @file
 * Small statistics helpers used by the metrics and bench layers.
 */

#ifndef RSEL_SUPPORT_STATS_HPP
#define RSEL_SUPPORT_STATS_HPP

#include <cstdint>
#include <vector>

namespace rsel {

/** Arithmetic mean. @return 0 for an empty vector. */
double mean(const std::vector<double> &values);

/**
 * Geometric mean; the conventional way to average ratios across
 * benchmarks. @pre all values positive. @return 1 for an empty vector.
 */
double geomean(const std::vector<double> &values);

/** Minimum. @pre non-empty. */
double minOf(const std::vector<double> &values);

/** Maximum. @pre non-empty. */
double maxOf(const std::vector<double> &values);

/**
 * Safe ratio: numerator / denominator, or `ifZero` when the
 * denominator is zero. Used for relative-to-baseline figures where a
 * degenerate workload could produce a zero baseline.
 */
double ratio(double numerator, double denominator, double ifZero = 1.0);

} // namespace rsel

#endif // RSEL_SUPPORT_STATS_HPP
