/**
 * @file
 * Process exit codes shared by every rselect tool.
 *
 * Scripts and CI gates branch on these, so the mapping is part of
 * the CLI contract (asserted by cli_test):
 *
 *   0  success
 *   1  runtime fault (I/O error, unexpected exception, panic)
 *   2  usage error (bad flag, malformed spec, missing file argument)
 *   3  verification failure (a static verifier diagnostic, a dynamic
 *      invariant violation, fuzz failures found, or a self-test that
 *      missed its target)
 */

#ifndef RSEL_SUPPORT_EXIT_CODES_HPP
#define RSEL_SUPPORT_EXIT_CODES_HPP

namespace rsel {

enum ExitCode : int {
    ExitOk = 0,
    ExitRuntimeFault = 1,
    ExitUsageError = 2,
    ExitVerifyFailure = 3,
};

} // namespace rsel

#endif // RSEL_SUPPORT_EXIT_CODES_HPP
