/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We implement xoshiro256** directly rather than relying on
 * std::mt19937 so that workload streams are bit-identical across
 * standard libraries and platforms — reproducibility of the synthetic
 * SPEC-like suite is a correctness requirement for the benchmarks.
 */

#ifndef RSEL_SUPPORT_RANDOM_HPP
#define RSEL_SUPPORT_RANDOM_HPP

#include <cstdint>
#include <vector>

namespace rsel {

/**
 * xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
 *
 * Seeded through splitmix64 so that small consecutive seeds yield
 * uncorrelated streams.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Pick an index according to a discrete weight vector.
     * @param weights non-negative weights, at least one positive.
     * @return index in [0, weights.size()).
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

  private:
    std::uint64_t s_[4];
};

} // namespace rsel

#endif // RSEL_SUPPORT_RANDOM_HPP
