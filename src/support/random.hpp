/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We implement xoshiro256** directly rather than relying on
 * std::mt19937 so that workload streams are bit-identical across
 * standard libraries and platforms — reproducibility of the synthetic
 * SPEC-like suite is a correctness requirement for the benchmarks.
 */

#ifndef RSEL_SUPPORT_RANDOM_HPP
#define RSEL_SUPPORT_RANDOM_HPP

#include <cstdint>
#include <vector>

namespace rsel {

/**
 * xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
 *
 * Seeded through splitmix64 so that small consecutive seeds yield
 * uncorrelated streams.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    // next/nextDouble/nextBool are defined inline: the executor
    // draws once per conditional branch event, making these the
    // hottest leaf calls of the whole simulation. The computation is
    // identical to the previous out-of-line definitions, so streams
    // are unchanged.

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability p (clamped to [0,1]). */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * Pick an index according to a discrete weight vector.
     * @param weights non-negative weights, at least one positive.
     * @return index in [0, weights.size()).
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace rsel

#endif // RSEL_SUPPORT_RANDOM_HPP
