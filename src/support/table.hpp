/**
 * @file
 * ASCII table rendering for benchmark harness output.
 *
 * Every bench binary prints its figure or table through this class so
 * that all reproduction output shares one format: a title, a header
 * row, aligned data rows, and an optional summary row (e.g. the
 * cross-benchmark average the paper quotes).
 */

#ifndef RSEL_SUPPORT_TABLE_HPP
#define RSEL_SUPPORT_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace rsel {

/** A titled, column-aligned ASCII table. */
class Table
{
  public:
    /**
     * @param title   table caption printed above the grid.
     * @param headers column headers; fixes the column count.
     */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a data row. @pre cells.size() == column count. */
    void addRow(std::vector<std::string> cells);

    /**
     * Append a summary row rendered after a separator rule.
     * @pre cells.size() == column count.
     */
    void addSummaryRow(std::vector<std::string> cells);

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

    /** Number of data rows added so far (summary rows excluded). */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    void printRule(std::ostream &os,
                   const std::vector<std::size_t> &widths) const;
    void printRow(std::ostream &os, const std::vector<std::string> &cells,
                  const std::vector<std::size_t> &widths) const;

    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::vector<std::string>> summaryRows_;
};

/** Format a double with the given number of decimal places. */
std::string formatDouble(double value, int decimals = 2);

/** Format a ratio as a percentage string, e.g. 0.92 -> "92.0%". */
std::string formatPercent(double ratio, int decimals = 1);

} // namespace rsel

#endif // RSEL_SUPPORT_TABLE_HPP
