#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace rsel {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 1.0;
    double logSum = 0.0;
    for (double v : values) {
        RSEL_ASSERT(v > 0.0, "geomean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
minOf(const std::vector<double> &values)
{
    RSEL_ASSERT(!values.empty(), "minOf requires a non-empty vector");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    RSEL_ASSERT(!values.empty(), "maxOf requires a non-empty vector");
    return *std::max_element(values.begin(), values.end());
}

double
ratio(double numerator, double denominator, double ifZero)
{
    if (denominator == 0.0)
        return ifZero;
    return numerator / denominator;
}

} // namespace rsel
