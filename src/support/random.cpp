#include "support/random.hpp"

#include "support/error.hpp"

namespace rsel {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    RSEL_ASSERT(bound > 0, "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    RSEL_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        RSEL_ASSERT(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    RSEL_ASSERT(total > 0.0, "at least one weight must be positive");

    double r = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace rsel
