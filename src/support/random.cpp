#include "support/random.hpp"

#include "support/error.hpp"

namespace rsel {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    RSEL_ASSERT(bound > 0, "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    RSEL_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    return lo + nextBelow(hi - lo + 1);
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        RSEL_ASSERT(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    RSEL_ASSERT(total > 0.0, "at least one weight must be positive");

    double r = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace rsel
