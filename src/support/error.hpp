/**
 * @file
 * Assertion and fatal-error helpers.
 *
 * Following the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for user errors (bad
 * configuration, invalid arguments).
 */

#ifndef RSEL_SUPPORT_ERROR_HPP
#define RSEL_SUPPORT_ERROR_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rsel {

/** Thrown for user-level errors (bad configuration, invalid input). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Raise a user-level error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

/** Raise an internal-invariant error. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace rsel

/**
 * Internal-invariant check. Unlike assert(), stays active in release
 * builds: region-selection correctness depends on these invariants and
 * the cost is negligible next to simulation work.
 */
#define RSEL_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rsel::panic(std::string("assertion failed: ") + #cond +       \
                          " — " + (msg) + " (" + __FILE__ + ":" +           \
                          std::to_string(__LINE__) + ")");                  \
        }                                                                   \
    } while (0)

#endif // RSEL_SUPPORT_ERROR_HPP
