/**
 * @file
 * Minimal command-line option parsing shared by examples and benches.
 *
 * Supports `--name value`, `--name=value` and boolean `--flag` forms.
 * Unknown options raise a FatalError listing the registered options.
 */

#ifndef RSEL_SUPPORT_CLI_HPP
#define RSEL_SUPPORT_CLI_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rsel {

/** Parsed command-line options with typed accessors and defaults. */
class CliOptions
{
  public:
    /**
     * Register an option before parsing.
     * @param name         option name without the leading dashes.
     * @param defaultValue value used when the option is absent.
     * @param help         one-line description for usage text.
     */
    void define(const std::string &name, const std::string &defaultValue,
                const std::string &help);

    /**
     * Parse argv. @throws FatalError on unknown or malformed options,
     * or prints usage and sets helpRequested() for --help.
     */
    void parse(int argc, const char *const *argv);

    /** String value of an option. @pre option was defined. */
    const std::string &get(const std::string &name) const;

    /**
     * Integer value of an option. @throws FatalError naming the
     * option on non-numeric, trailing-garbage or out-of-range input.
     */
    std::int64_t getInt(const std::string &name) const;

    /**
     * Unsigned 64-bit value of an option. @throws FatalError naming
     * the option on non-numeric, negative, trailing-garbage or
     * out-of-range input.
     */
    std::uint64_t getUint(const std::string &name) const;

    /**
     * Double value of an option. @throws FatalError naming the
     * option on non-numeric or out-of-range input.
     */
    double getDouble(const std::string &name) const;

    /** Boolean value: "1", "true", "yes", "on" are true. */
    bool getBool(const std::string &name) const;

    /** True when --help was passed. */
    bool helpRequested() const { return helpRequested_; }

    /** Usage text listing all defined options. */
    std::string usage(const std::string &program) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    struct Option
    {
        std::string value;
        std::string help;
    };

    std::map<std::string, Option> options_;
    std::vector<std::string> positional_;
    bool helpRequested_ = false;
};

} // namespace rsel

#endif // RSEL_SUPPORT_CLI_HPP
