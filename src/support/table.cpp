#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace rsel {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    RSEL_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    RSEL_ASSERT(cells.size() == headers_.size(),
                "row width must match header width");
    rows_.push_back(std::move(cells));
}

void
Table::addSummaryRow(std::vector<std::string> cells)
{
    RSEL_ASSERT(cells.size() == headers_.size(),
                "summary row width must match header width");
    summaryRows_.push_back(std::move(cells));
}

void
Table::printRule(std::ostream &os,
                 const std::vector<std::size_t> &widths) const
{
    os << '+';
    for (std::size_t w : widths)
        os << std::string(w + 2, '-') << '+';
    os << '\n';
}

void
Table::printRow(std::ostream &os, const std::vector<std::string> &cells,
                const std::vector<std::size_t> &widths) const
{
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string &c = cells[i];
        // First column left-aligned (labels), the rest right-aligned
        // (numbers).
        if (i == 0) {
            os << ' ' << c << std::string(widths[i] - c.size(), ' ')
               << " |";
        } else {
            os << ' ' << std::string(widths[i] - c.size(), ' ') << c
               << " |";
        }
    }
    os << '\n';
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();

    auto widen = [&](const std::vector<std::vector<std::string>> &rows) {
        for (const auto &row : rows)
            for (std::size_t i = 0; i < row.size(); ++i)
                widths[i] = std::max(widths[i], row[i].size());
    };
    widen(rows_);
    widen(summaryRows_);

    os << title_ << '\n';
    printRule(os, widths);
    printRow(os, headers_, widths);
    printRule(os, widths);
    for (const auto &row : rows_)
        printRow(os, row, widths);
    if (!summaryRows_.empty()) {
        printRule(os, widths);
        for (const auto &row : summaryRows_)
            printRow(os, row, widths);
    }
    printRule(os, widths);
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double ratio, int decimals)
{
    return formatDouble(ratio * 100.0, decimals) + "%";
}

} // namespace rsel
