#include "support/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace rsel {

void
CliOptions::define(const std::string &name, const std::string &defaultValue,
                   const std::string &help)
{
    options_[name] = Option{defaultValue, help};
}

void
CliOptions::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            continue;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool haveValue = false;

        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            haveValue = true;
        }

        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option --" + name + "\n" + usage(argv[0]));

        if (!haveValue) {
            // `--name value` form, or bare boolean flag.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        it->second.value = value;
    }
}

const std::string &
CliOptions::get(const std::string &name) const
{
    auto it = options_.find(name);
    RSEL_ASSERT(it != options_.end(), "option not defined: " + name);
    return it->second.value;
}

std::int64_t
CliOptions::getInt(const std::string &name) const
{
    return std::strtoll(get(name).c_str(), nullptr, 0);
}

std::uint64_t
CliOptions::getUint(const std::string &name) const
{
    return std::strtoull(get(name).c_str(), nullptr, 0);
}

double
CliOptions::getDouble(const std::string &name) const
{
    return std::strtod(get(name).c_str(), nullptr);
}

bool
CliOptions::getBool(const std::string &name) const
{
    const std::string &v = get(name);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string
CliOptions::usage(const std::string &program) const
{
    std::ostringstream oss;
    oss << "usage: " << program << " [options]\n";
    for (const auto &[name, opt] : options_) {
        oss << "  --" << name << " (default: "
            << (opt.value.empty() ? "<empty>" : opt.value) << ")\n"
            << "      " << opt.help << '\n';
    }
    return oss.str();
}

} // namespace rsel
