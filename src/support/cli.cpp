#include "support/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

namespace rsel {

namespace {

/**
 * Reject values strtoll/strtoull/strtod would silently mis-parse:
 * empty strings, trailing garbage ("12abc"), wholly non-numeric
 * text ("abc" parses as 0), and out-of-range magnitudes. `end` is
 * the end pointer the strto* call produced.
 */
void
checkNumeric(const std::string &name, const std::string &value,
             const char *end, const char *kind)
{
    if (value.empty() || end != value.c_str() + value.size())
        fatal("option --" + name + " expects " + kind + " value, got '" +
              value + "'");
    if (errno == ERANGE)
        fatal("option --" + name + " value '" + value +
              "' is out of range");
}

} // namespace

void
CliOptions::define(const std::string &name, const std::string &defaultValue,
                   const std::string &help)
{
    options_[name] = Option{defaultValue, help};
}

void
CliOptions::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            continue;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }

        std::string name = arg.substr(2);
        std::string value;
        bool haveValue = false;

        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            haveValue = true;
        }

        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option --" + name + "\n" + usage(argv[0]));

        if (!haveValue) {
            // `--name value` form, or bare boolean flag.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        it->second.value = value;
    }
}

const std::string &
CliOptions::get(const std::string &name) const
{
    auto it = options_.find(name);
    RSEL_ASSERT(it != options_.end(), "option not defined: " + name);
    return it->second.value;
}

std::int64_t
CliOptions::getInt(const std::string &name) const
{
    const std::string &v = get(name);
    char *end = nullptr;
    errno = 0;
    const std::int64_t result = std::strtoll(v.c_str(), &end, 0);
    checkNumeric(name, v, end, "an integer");
    return result;
}

std::uint64_t
CliOptions::getUint(const std::string &name) const
{
    const std::string &v = get(name);
    // strtoull silently wraps negative input ("-5" becomes 2^64-5);
    // reject the sign outright.
    if (v.find('-') != std::string::npos)
        fatal("option --" + name +
              " expects a non-negative integer, got '" + v + "'");
    char *end = nullptr;
    errno = 0;
    const std::uint64_t result = std::strtoull(v.c_str(), &end, 0);
    checkNumeric(name, v, end, "a non-negative integer");
    return result;
}

double
CliOptions::getDouble(const std::string &name) const
{
    const std::string &v = get(name);
    char *end = nullptr;
    errno = 0;
    const double result = std::strtod(v.c_str(), &end);
    checkNumeric(name, v, end, "a number");
    return result;
}

bool
CliOptions::getBool(const std::string &name) const
{
    const std::string &v = get(name);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string
CliOptions::usage(const std::string &program) const
{
    std::ostringstream oss;
    oss << "usage: " << program << " [options]\n";
    for (const auto &[name, opt] : options_) {
        oss << "  --" << name << " (default: "
            << (opt.value.empty() ? "<empty>" : opt.value) << ")\n"
            << "      " << opt.help << '\n';
    }
    return oss.str();
}

} // namespace rsel
