/**
 * @file
 * The compile-time concurrency contract: annotated synchronization
 * primitives for Clang Thread Safety Analysis (TSA).
 *
 * Every mutex, condition variable and lock scope in first-party
 * concurrent code goes through these wrappers so that the *locking
 * discipline itself* is part of the type system: which capability
 * guards which field (`RSEL_GUARDED_BY`), which capability a
 * function needs (`RSEL_REQUIRES`), and in which order capabilities
 * may be acquired (`RSEL_ACQUIRED_AFTER`). The `analyze` CMake
 * preset compiles the whole tree with `-Wthread-safety
 * -Wthread-safety-beta -Werror=thread-safety-analysis`, turning a
 * forgotten lock or a lock-order inversion into a build break —
 * TSan can only bless the interleavings a stress run happens to
 * produce; this layer rejects the bug on every interleaving,
 * including the ones that never ran. The negative-compile battery
 * (`tests/negative_compile/`, driven by `rselect-tsa-gate`) proves
 * the gate actually rejects each violation class.
 *
 * On non-Clang compilers every annotation expands to nothing and
 * the wrappers are zero-cost veneers over `std::mutex` /
 * `std::condition_variable`, so GCC builds are unaffected.
 *
 * # Atomics discipline (comment-enforced, reviewed by the `analyze`
 * # gate's human half)
 *
 * TSA cannot model lock-free publication, so every `std::atomic`
 * member carries a role tag in its declaration comment, and the tag
 * dictates the strongest memory order the member may use:
 *
 *  - `role: counter (relaxed)` — a monotonic statistic (admissions,
 *    releases, contention). Nothing is ordered against it; every
 *    access must be `memory_order_relaxed`.
 *  - `role: gauge (relaxed)` — a current-level figure (live bytes)
 *    whose adds and subs commute; consistency comes from the mutex
 *    protecting the structure it mirrors, so accesses are relaxed.
 *  - `role: high-water (relaxed CAS)` — a monotonic maximum
 *    maintained with a relaxed compare-exchange loop; advisory by
 *    construction (a racing reader may see yesterday's peak).
 *  - `role: flag (release/acquire)` — a one-way state transition
 *    (`stop_`, `active`) that *publishes* everything written before
 *    the store. Writers use `memory_order_release`, readers
 *    `memory_order_acquire`.
 *  - `role: publication count (release/acquire)` — a size field
 *    that publishes construction of the elements it counts
 *    (`accountCount_`). Release on store, acquire on load; the
 *    elements themselves may then be read lock-free.
 *
 * `memory_order_seq_cst` (the default) is banned in first-party
 * code: if an access needs it, the design is wrong — say why in a
 * comment or take a mutex.
 */

#ifndef RSEL_SUPPORT_SYNC_HPP
#define RSEL_SUPPORT_SYNC_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "support/error.hpp"

// ---------------------------------------------------------------------------
// Annotation macros. Clang-only: GCC and MSVC see empty expansions.
// Names follow the Clang TSA documentation (and abseil's
// thread_annotations.h) so the meaning is greppable upstream.
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define RSEL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RSEL_THREAD_ANNOTATION(x) // compiles away off-Clang
#endif

/** Marks a class as a capability (a lockable thing). */
#define RSEL_CAPABILITY(x) RSEL_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime equals a critical section. */
#define RSEL_SCOPED_CAPABILITY RSEL_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be touched while holding `x`. */
#define RSEL_GUARDED_BY(x) RSEL_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding `x`. */
#define RSEL_PT_GUARDED_BY(x) RSEL_THREAD_ANNOTATION(pt_guarded_by(x))

/** Declares lock order: this capability before the named ones. */
#define RSEL_ACQUIRED_BEFORE(...) \
    RSEL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Declares lock order: this capability after the named ones. */
#define RSEL_ACQUIRED_AFTER(...) \
    RSEL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Caller must hold the capabilities (exclusively). */
#define RSEL_REQUIRES(...) \
    RSEL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capabilities and returns holding them. */
#define RSEL_ACQUIRE(...) \
    RSEL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capabilities. */
#define RSEL_RELEASE(...) \
    RSEL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires iff it returns `value`. */
#define RSEL_TRY_ACQUIRE(...) \
    RSEL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capabilities (deadlock guard). */
#define RSEL_EXCLUDES(...) \
    RSEL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define RSEL_RETURN_CAPABILITY(x) RSEL_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use must cite the protocol that makes the
 *  unchecked access sound (e.g. acquire/release publication). */
#define RSEL_NO_THREAD_SAFETY_ANALYSIS \
    RSEL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rsel {

/**
 * An annotated mutex. Exactly `std::mutex` at runtime; the
 * annotations are the point. Prefer the scoped lockers below over
 * calling lock()/unlock() directly.
 */
class RSEL_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() RSEL_ACQUIRE() { mu_.lock(); }
    void unlock() RSEL_RELEASE() { mu_.unlock(); }
    bool tryLock() RSEL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /**
     * The wrapped std::mutex, for interop with std wait machinery
     * (CondVar adopts it around a wait). Locking through this
     * reference bypasses the analysis — CondVar is the only
     * sanctioned user.
     */
    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/**
 * RAII critical section over a Mutex. The second constructor is the
 * contended-acquisition probe the arena uses: a failed try-lock
 * bumps `contended` (relaxed counter) before blocking, so shard
 * contention stays observable without a second locking idiom.
 */
class RSEL_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) RSEL_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    MutexLock(Mutex &mu, std::atomic<std::uint64_t> &contended)
        RSEL_ACQUIRE(mu)
        : mu_(mu)
    {
        if (!mu_.tryLock()) {
            // Someone else holds the capability right now; count it,
            // then wait like everyone else.
            contended.fetch_add(1, std::memory_order_relaxed);
            mu_.lock();
        }
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() RSEL_RELEASE() { mu_.unlock(); }

  private:
    Mutex &mu_;
};

/**
 * RAII acquisition that treats contention as a *caller bug*: the
 * capability models a single-owner contract (e.g. "one thread runs
 * a TenantSession at a time"), so a blocked acquisition means two
 * owners and the only safe move is to panic before state corrupts.
 */
class RSEL_SCOPED_CAPABILITY MutexSoleLock
{
  public:
    explicit MutexSoleLock(Mutex &mu) RSEL_ACQUIRE(mu) : mu_(mu)
    {
        if (!mu_.tryLock())
            contendedSoleOwner();
    }

    MutexSoleLock(const MutexSoleLock &) = delete;
    MutexSoleLock &operator=(const MutexSoleLock &) = delete;

    ~MutexSoleLock() RSEL_RELEASE() { mu_.unlock(); }

  private:
    [[noreturn]] static void
    contendedSoleOwner()
    {
        panic("single-owner capability contended: two threads "
              "entered a context the contract serializes");
    }

    Mutex &mu_;
};

/**
 * Scoped try-lock. Check `owns()` (or the bool conversion)
 * immediately after construction; TSA support for branching on
 * scoped try-locks is limited, so prefer `Mutex::tryLock()` in
 * annotated code and keep this for opportunistic, unannotated
 * fast paths.
 */
class RSEL_SCOPED_CAPABILITY MutexTryLock
{
  public:
    explicit MutexTryLock(Mutex &mu) RSEL_TRY_ACQUIRE(true, mu)
        : mu_(mu), owns_(mu.tryLock())
    {}

    MutexTryLock(const MutexTryLock &) = delete;
    MutexTryLock &operator=(const MutexTryLock &) = delete;

    ~MutexTryLock() RSEL_RELEASE()
    {
        if (owns_)
            mu_.unlock();
    }

    bool owns() const { return owns_; }
    explicit operator bool() const { return owns_; }

  private:
    Mutex &mu_;
    bool owns_;
};

/**
 * An annotated condition variable. wait() demands the capability in
 * its signature, which is what makes a condvar wait predicate a
 * *stated* capability: the predicate loop
 *
 *     MutexLock lock(mu_);
 *     while (!readyLocked())   // readyLocked() RSEL_REQUIRES(mu_)
 *         cv_.wait(mu_);
 *
 * cannot compile with the lock missing, and the predicate method's
 * own annotation pins which mutex the predicate is a function of.
 * Spurious wakeups are the caller's loop to absorb — there is
 * deliberately no predicate-lambda overload, because TSA cannot see
 * through a lambda into the capability context of its caller.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `mu`, sleep, reacquire. @pre `mu` held. */
    void
    wait(Mutex &mu) RSEL_REQUIRES(mu)
    {
        // Adopt the already-held native mutex for the duration of
        // the wait, then hand ownership back to the annotated
        // wrapper: TSA sees the capability held across the call.
        std::unique_lock<std::mutex> native(mu.native(),
                                            std::adopt_lock);
        cv_.wait(native);
        native.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace rsel

#endif // RSEL_SUPPORT_SYNC_HPP
