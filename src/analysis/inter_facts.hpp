/**
 * @file
 * Interprocedural facts: per-function summaries propagated bottom-up
 * over the call-graph condensation.
 *
 * Size/shape facts (`FuncSummary`) are local per function; the
 * transitive facts (which functions a function can reach through
 * calls, and the instruction mass of that closure) are a dataflow
 * problem on the call graph: the closure of f is {f} united with the
 * closures of its callees. On an acyclic condensation one bottom-up
 * sweep suffices; recursive SCCs make it a genuine fixpoint, which
 * the PR 5 worklist solver (`solveDataflow`, backward direction,
 * `BitsetLattice` powerset) computes soundly: the meet (set union)
 * is monotone, so the fixpoint over-approximates every concrete call
 * chain, including chains that wind through recursion an unbounded
 * number of times.
 *
 * The closure is the sound currency of the layer: any inlining or
 * cross-call region growth at a call site can duplicate at most the
 * closure of its callees (you cannot reach code outside the closure
 * by following calls), which is what the inlining-opportunity
 * analyzer uses as its duplication upper bound.
 */

#ifndef RSEL_ANALYSIS_INTER_FACTS_HPP
#define RSEL_ANALYSIS_INTER_FACTS_HPP

#include <cstdint>
#include <vector>

#include "analysis/call_graph.hpp"
#include "analysis/dataflow.hpp"

namespace rsel {
namespace analysis {

/** Bottom-up summary of one function. */
struct FuncSummary
{
    FuncId func = invalidFunc;
    /** Blocks in the function's layout range. */
    std::uint32_t blockCount = 0;
    /** Static instructions / bytes of the function body. */
    std::uint64_t insts = 0;
    std::uint64_t bytes = 0;
    /** Max natural-loop nesting depth over the function's blocks. */
    std::uint32_t maxLoopDepth = 0;
    /** Call sites inside the function. */
    std::uint32_t callSites = 0;
    /** Call sites elsewhere that may target the function. */
    std::uint32_t fanIn = 0;
    /** True iff the function contains a Return terminator. */
    bool hasReturn = false;
    /** True iff the function contains no call sites. */
    bool leaf = false;
    /** True iff the function sits on a call cycle. */
    bool recursive = false;
    /** |closure(f)|: functions reachable from f via calls, incl f. */
    std::uint32_t closureFuncs = 0;
    /** Static instruction mass of the closure (sound duplication
     *  upper bound for inlining f, recursion collapsed to one copy
     *  per function — the code-cache cost model, where a function
     *  body is materialized at most once per inlining decision). */
    std::uint64_t closureInsts = 0;
    /** Max loop depth over the closure's functions. */
    std::uint32_t closureMaxLoopDepth = 0;
};

/** Interprocedural facts of one Program, cached by AnalysisManager. */
struct InterFacts
{
    CallGraph callGraph;
    /** Summary per FuncId. */
    std::vector<FuncSummary> summaries;
    /** Call closure per FuncId as a BitsetLattice value. */
    std::vector<BitsetLattice::Value> closure;
    /** Transfer applications the closure fixpoint ran. */
    std::uint64_t dataflowTransfers = 0;
    /** True iff the fixpoint settled inside the transfer budget
     *  (always true for the monotone powerset lattice). */
    bool converged = true;

    /** True iff `to` is in the call closure of `from`. */
    bool inClosure(FuncId from, FuncId to) const
    {
        return from < closure.size() &&
               BitsetLattice::testBit(closure[from], to);
    }
};

/** Build interprocedural facts from cached program facts. */
InterFacts buildInterFacts(const ProgramFacts &pf);

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_INTER_FACTS_HPP
