#include "analysis/dataflow.hpp"

#include <bit>

namespace rsel {
namespace analysis {

std::uint32_t
BitsetLattice::countBits(const Value &v)
{
    std::uint32_t n = 0;
    for (const std::uint64_t w : v)
        n += static_cast<std::uint32_t>(std::popcount(w));
    return n;
}

DataflowResult<BitsetLattice::Value>
reachingSources(const DiGraph &graph, const CfgFacts &cfg,
                const std::vector<std::uint32_t> &sources)
{
    const BitsetLattice lattice(
        static_cast<std::uint32_t>(sources.size()));
    // gen[n] holds the bits of the sources located at n.
    std::vector<BitsetLattice::Value> gen(graph.size(),
                                          lattice.bottom());
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(sources.size()); ++i)
        BitsetLattice::setBit(gen[sources[i]], i);
    return solveDataflow(
        graph, cfg, DataflowDirection::Forward, lattice,
        [&gen, &lattice](std::uint32_t node,
                         BitsetLattice::Value in) {
            lattice.meetInto(in, gen[node]);
            return in;
        });
}

DataflowResult<std::uint8_t>
reachesAnyOf(const DiGraph &graph, const CfgFacts &cfg,
             const std::vector<std::uint8_t> &targetMask)
{
    const BoolOrLattice lattice;
    return solveDataflow(
        graph, cfg, DataflowDirection::Backward, lattice,
        [&targetMask](std::uint32_t node, std::uint8_t in) {
            return static_cast<std::uint8_t>(
                in | (targetMask[node] ? 1u : 0u));
        });
}

} // namespace analysis
} // namespace rsel
