/**
 * @file
 * The interprocedural call graph: functions as nodes, call sites as
 * edges.
 *
 * Built from the call/return terminators of a `Program` (via its
 * cached `ProgramFacts`): every `Call` terminator contributes the
 * edge caller -> owning-function-of-target, every `IndirectCall`
 * one edge per declared target. `CfgFacts::compute` over the
 * function-level graph gives reachability from the entry function
 * and the Tarjan SCC condensation, so recursion and mutual recursion
 * collapse into single condensation nodes and the bottom-up order is
 * well defined even for cyclic call graphs.
 *
 * The bottom-up order relies on a property of the iterative Tarjan
 * in `CfgFacts`: component ids are assigned when a component is
 * *completed*, and a component can only complete after every
 * component it reaches has completed. Ascending `sccId` is therefore
 * a reverse topological order of the condensation — callees before
 * callers — which is exactly the order summary propagation wants.
 *
 * Everything here is iterative (worklists, explicit stacks): the
 * analyzer must survive adversarial call graphs — long chains, deep
 * mutual-recursion rings — without growing the host stack
 * (`misc-no-recursion` is enforced by clang-tidy).
 */

#ifndef RSEL_ANALYSIS_CALL_GRAPH_HPP
#define RSEL_ANALYSIS_CALL_GRAPH_HPP

#include <cstdint>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "analysis/cfg_facts.hpp"

namespace rsel {
namespace analysis {

/** One call terminator: where it sits and what it can reach. */
struct CallSite
{
    /** The block whose terminator is the call. */
    BlockId block = invalidBlock;
    /** Function owning the call block. */
    FuncId caller = invalidFunc;
    /** BranchKind::Call or BranchKind::IndirectCall. */
    BranchKind kind = BranchKind::Call;
    /** Possible callees, deduplicated, ascending. */
    std::vector<FuncId> callees;
    /** Natural-loop nesting depth of the call block in the caller's
     *  block-level CFG (0 = not inside any loop). */
    std::uint32_t loopDepth = 0;
    /** Fall-through block the matching return must land at. */
    BlockId returnBlock = invalidBlock;
};

/** Function-level call graph plus its condensation facts. */
struct CallGraph
{
    const Program *prog = nullptr;
    /** Function owning Program::entry() (invalidFunc if none). */
    FuncId entryFunc = invalidFunc;
    /** Node f == FuncId f; edge caller -> callee. */
    DiGraph graph{0};
    /** Facts of `graph` rooted at entryFunc: reachability, SCC
     *  condensation, predecessor lists. */
    CfgFacts cfg;
    /** Every call site in the program, in block-id order. */
    std::vector<CallSite> sites;
    /** Per function: indices into `sites` of its call sites. */
    std::vector<std::vector<std::uint32_t>> sitesOf;
    /** Per function: number of call sites that may target it. */
    std::vector<std::uint32_t> fanIn;
    /** Per function: number of distinct functions it may call. */
    std::vector<std::uint32_t> fanOut;
    /** Per function: 1 iff it sits on a call cycle (its SCC cycles). */
    std::vector<std::uint8_t> recursive;
    /** Natural-loop nesting depth per basic block (caller CFG). */
    std::vector<std::uint32_t> blockLoopDepth;
    /**
     * Every FuncId, callees before callers across SCCs (ascending
     * Tarjan completion id; members of one SCC are adjacent).
     */
    std::vector<FuncId> bottomUp;

    /** True iff f is reachable from the entry function via calls. */
    bool callReachable(FuncId f) const
    {
        return f < cfg.reachable.size() && cfg.reachable[f] != 0;
    }
};

/** Build the call graph from cached program facts. */
CallGraph buildCallGraph(const ProgramFacts &pf);

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_CALL_GRAPH_HPP
