/**
 * @file
 * Static region-quality predictors: the paper's shape metrics
 * (duplication, spanning cycles, exit-stub pressure, trace
 * separation) computed from the CFG plus branch-behaviour specs,
 * without running the simulator.
 *
 * Two kinds of output live side by side and are never mixed up:
 *
 *  - *Bounds* (`maxRegions`, `maxSpanningRegions`, `dupBoundInsts`,
 *    `expansionBoundInsts`, `stubDensityMin/Max`) are sound for any
 *    unbounded-cache, fault-free run: `checkPrediction` treats a
 *    measured value outside them as a hard violation. They rest on
 *    the selector formation models (`src/selection/formation_model`),
 *    the single-entrance invariant and the region-connectivity
 *    invariant (members reachable from the entrance), all enforced
 *    by the verifier layer. Bounded caches and fault injection break
 *    the single-entrance premise (entrances re-select after
 *    eviction), so the validation harness always measures against
 *    unbounded, fault-free runs.
 *
 *  - *Estimates* (`stubDensityEst`, `spanningRatioEst`,
 *    `tailDupEstInsts`, `innerLoopDupInsts`) are heuristics; the
 *    bench table reports their error, nothing gates on them.
 *
 * The pass suite is built on the dataflow framework: entrance
 * reach-sets are a forward bitset-union analysis
 * (`reachingSources`), the unbiased-branch frontier a backward
 * or-analysis (`reachesAnyOf`) over the forward-edge subgraph.
 */

#ifndef RSEL_ANALYSIS_STATIC_PREDICTOR_HPP
#define RSEL_ANALYSIS_STATIC_PREDICTOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "analysis/diagnostics.hpp"
#include "metrics/sim_result.hpp"

namespace rsel {
namespace analysis {

/** Static bounds and estimates for one selector. */
struct SelectorPrediction
{
    /** Selector name (algorithmName / SimResult::selector). */
    std::string selector;
    /** Entrance candidates under the selector's formation rule. */
    std::uint32_t entranceCount = 0;
    /** Bound: regions selected (single-entrance argument). */
    std::uint64_t maxRegions = 0;
    /** Bound: regions that span a cycle (entrance on a cycle). */
    std::uint64_t maxSpanningRegions = 0;
    /** Bound: duplicated instructions (entrance reach-sets). */
    std::uint64_t dupBoundInsts = 0;
    /** Bound: instructions copied into the cache. */
    std::uint64_t expansionBoundInsts = 0;
    /** Bound: exitStubs <= stubDensityMax * expansionInsts. */
    double stubDensityMax = 0.0;
    /** Bound: exitStubs >= stubDensityMin * expansionInsts. */
    double stubDensityMin = 0.0;
    /** Estimate: expected stubs per copied instruction. */
    double stubDensityEst = 0.0;
    /** Estimate: expected spanning-region fraction. */
    double spanningRatioEst = 0.0;
};

/** Whole-program static report: shared facts plus per-selector
 *  predictions. */
struct StaticReport
{
    std::uint32_t blockCount = 0;
    std::uint32_t reachableBlocks = 0;
    std::uint64_t staticInsts = 0;
    /** Instructions of reachable blocks only. */
    std::uint64_t reachableInsts = 0;

    /** Loop nesting. */
    std::uint32_t loopCount = 0;
    std::uint32_t maxLoopDepth = 0;
    /** Natural-loop nesting depth per block (0 = not in a loop). */
    std::vector<std::uint32_t> loopDepth;
    /** Loops nested inside another loop (depth >= 2 headers). */
    std::uint32_t innerLoops = 0;
    /** Instructions in inner-loop bodies: the NET inner-loop
     *  duplication set (estimate input). */
    std::uint64_t innerLoopDupInsts = 0;

    /** Unbiased conditional branches (Bernoulli p in [0.35, 0.65]
     *  in some phase), reachable blocks only. */
    std::vector<std::uint8_t> unbiasedBranch;
    std::uint32_t unbiasedBranches = 0;
    /** Of those, branches inside some natural loop body. */
    std::uint32_t unbiasedInLoops = 0;
    /** Blocks that can reach an unbiased branch along forward edges
     *  (the backward-dataflow frontier). */
    std::uint32_t frontierBlocks = 0;
    /** Estimate: instructions NET tail-duplicates past unbiased
     *  branches (joint forward-edge descendants of both arms). */
    std::uint64_t tailDupEstInsts = 0;

    /** Blocks on a possible-CFG cycle (reachable only). */
    std::uint32_t cyclicBlocks = 0;
    /** Cyclic SCCs spanning more than one function. */
    std::uint32_t crossFuncCycles = 0;
    /** Most functions any single cyclic SCC spans. */
    std::uint32_t maxSeparationFuncs = 0;

    /** Interprocedural facts (call-graph layer; inter_facts.hpp). */
    std::uint32_t funcCount = 0;
    std::uint32_t callSiteCount = 0;
    /** Functions the entry function reaches through call edges. */
    std::uint32_t callReachableFuncs = 0;
    /** Functions on a call cycle (self or mutual recursion). */
    std::uint32_t recursiveFuncs = 0;
    /** Call sites inside a natural loop of their caller. */
    std::uint32_t hotCallSites = 0;
    /** Sound bound: sum of per-site duplication-growth bounds of
     *  the inlining-opportunity analyzer. */
    std::uint64_t inlineDupGrowthBoundInsts = 0;

    /** Transfer-function applications the pass suite spent. */
    std::uint64_t dataflowTransfers = 0;

    /** One prediction per shipped selector. */
    std::vector<SelectorPrediction> predictions;
};

/** Compute the full report (facts come from the manager's cache). */
StaticReport computeStaticReport(AnalysisManager &mgr,
                                 const Program &prog);

/** Prediction for a selector name; nullptr if absent. */
const SelectorPrediction *findPrediction(const StaticReport &report,
                                         const std::string &selector);

/**
 * Check one measured run against a prediction's *bounds*. Only
 * meaningful for unbounded-cache, fault-free runs (see file
 * comment). @return one message per violated bound; empty if every
 * bound holds.
 */
std::vector<std::string> checkPrediction(const SelectorPrediction &p,
                                         const SimResult &res);

/**
 * Emit the report as machine-readable note diagnostics (one per
 * fact family, pass names "loop-nesting", "unbiased-frontier",
 * "net-duplication", "lei-coverage", "exit-stubs",
 * "trace-separation", "interprocedural", "inline-opportunity")
 * plus warning lints for pathological inputs:
 * "duplication-explosion" (predicted duplication exceeding the
 * reachable code, or >= 3 unbiased branches in one loop body) and
 * "separation-prone" (a cyclic SCC spanning >= 3 functions).
 */
void emitStaticFacts(const StaticReport &report, const Program &prog,
                     const ProgramFacts &pf, DiagnosticEngine &diag);

/**
 * Canonical analyze pass names, in emission order: every note
 * family and warning lint emitStaticFacts can produce. This is the
 * vocabulary of rselect-analyze --list-passes/--only/--skip.
 */
const std::vector<std::string> &analyzePassNames();

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_STATIC_PREDICTOR_HPP
