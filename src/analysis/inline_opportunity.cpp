#include "analysis/inline_opportunity.hpp"

#include <algorithm>

namespace rsel {
namespace analysis {

OpportunityReport
analyzeInlineOpportunities(const InterFacts &inf)
{
    const CallGraph &cg = inf.callGraph;
    const std::uint32_t nFuncs =
        static_cast<std::uint32_t>(inf.summaries.size());
    OpportunityReport rep;
    rep.ranked.reserve(cg.sites.size());

    const BitsetLattice lattice(nFuncs);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(cg.sites.size()); ++i) {
        const CallSite &site = cg.sites[i];
        InlineOpportunity op;
        op.site = i;
        op.block = site.block;
        op.caller = site.caller;
        op.loopDepth = site.loopDepth;
        op.hotLoop = site.loopDepth >= 1;

        // Union of the callees' call closures: the code any inline
        // at this site can possibly commit the cache to.
        BitsetLattice::Value dup = lattice.bottom();
        bool allLeafSmall = !site.callees.empty();
        bool allSingle = !site.callees.empty();
        bool allReturn = !site.callees.empty();
        for (const FuncId callee : site.callees) {
            if (callee >= nFuncs) {
                allLeafSmall = allSingle = allReturn = false;
                continue;
            }
            const FuncSummary &s = inf.summaries[callee];
            lattice.meetInto(dup, inf.closure[callee]);
            if (!s.leaf || s.insts > smallCalleeInsts)
                allLeafSmall = false;
            if (s.fanIn != 1)
                allSingle = false;
            if (!s.hasReturn)
                allReturn = false;
        }
        for (FuncId g = 0; g < nFuncs; ++g)
            if (BitsetLattice::testBit(dup, g))
                op.dupGrowthBoundInsts += inf.summaries[g].insts;

        op.smallLeafCallee = allLeafSmall;
        op.singleCallSite = allSingle;
        op.returnRejoins =
            allReturn && site.returnBlock != invalidBlock;

        op.score = 4.0 * op.loopDepth +
                   (op.smallLeafCallee ? 3.0 : 0.0) +
                   (op.singleCallSite ? 2.0 : 0.0) +
                   (op.returnRejoins ? 1.0 : 0.0) -
                   static_cast<double>(op.dupGrowthBoundInsts) / 64.0;

        rep.totalDupGrowthBoundInsts += op.dupGrowthBoundInsts;
        rep.hotLoopSites += op.hotLoop ? 1 : 0;
        rep.smallLeafSites += op.smallLeafCallee ? 1 : 0;
        rep.singleCallSiteSites += op.singleCallSite ? 1 : 0;
        rep.rejoinSites += op.returnRejoins ? 1 : 0;
        rep.ranked.push_back(op);
    }

    std::sort(rep.ranked.begin(), rep.ranked.end(),
              [](const InlineOpportunity &a, const InlineOpportunity &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.site < b.site;
              });
    return rep;
}

} // namespace analysis
} // namespace rsel
