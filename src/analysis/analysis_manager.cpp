#include "analysis/analysis_manager.hpp"

#include "analysis/inter_facts.hpp"

namespace rsel {
namespace analysis {

AnalysisManager::AnalysisManager() = default;
// Out of line: ~unique_ptr<InterFacts> needs the complete type.
AnalysisManager::~AnalysisManager() = default;

std::uint64_t
programFingerprint(const Program &prog)
{
    // FNV-style mix of the shape properties a reassignment would
    // realistically change; collisions only matter when a variable
    // is rebound to a program of identical shape, in which case the
    // facts are identical anyway for every graph-level consumer.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t v) {
        h = (h ^ v) * 0x100000001b3ull;
    };
    mix(prog.blocks().size());
    mix(prog.functions().size());
    mix(prog.entry());
    mix(prog.staticInstCount());
    mix(prog.staticByteSize());
    for (const BasicBlock &b : prog.blocks()) {
        mix(static_cast<std::uint64_t>(b.terminator()));
        mix(b.startAddr());
    }
    return h;
}

ProgramFacts
buildProgramFacts(const Program &prog)
{
    ProgramFacts pf;
    pf.prog = &prog;
    pf.fingerprint = programFingerprint(prog);
    const std::uint32_t n =
        static_cast<std::uint32_t>(prog.blocks().size());
    pf.graph = DiGraph(n);

    for (const BasicBlock &b : prog.blocks())
        if (b.terminator() == BranchKind::Call ||
            b.terminator() == BranchKind::IndirectCall)
            pf.returnTargets.insert(b.fallThroughAddr());

    for (const BasicBlock &b : prog.blocks()) {
        switch (b.terminator()) {
        case BranchKind::None: {
            if (const BasicBlock *ft = prog.fallThroughOf(b))
                pf.graph.addEdge(b.id(), ft->id());
            break;
        }
        case BranchKind::CondDirect: {
            if (const BasicBlock *tk =
                    prog.blockAtAddr(b.takenTarget()))
                pf.graph.addEdge(b.id(), tk->id());
            if (const BasicBlock *ft = prog.fallThroughOf(b))
                pf.graph.addEdge(b.id(), ft->id());
            break;
        }
        case BranchKind::Jump:
        case BranchKind::Call: {
            if (const BasicBlock *tk =
                    prog.blockAtAddr(b.takenTarget()))
                pf.graph.addEdge(b.id(), tk->id());
            break;
        }
        case BranchKind::IndirectJump:
        case BranchKind::IndirectCall: {
            if (!prog.hasIndirectBehavior(b.id()))
                break;
            for (const BlockId t :
                 prog.indirectBehavior(b.id()).targets)
                if (t < n)
                    pf.graph.addEdge(b.id(), t);
            break;
        }
        case BranchKind::Return: {
            // Conservative: a return may land at any call's
            // fall-through (mirrors CfgOracle::legalEdge).
            for (const Addr addr : pf.returnTargets)
                if (const BasicBlock *tb = prog.blockAtAddr(addr))
                    pf.graph.addEdge(b.id(), tb->id());
            break;
        }
        case BranchKind::Halt:
            break;
        }
    }

    pf.cfg = CfgFacts::compute(pf.graph, prog.entry());
    return pf;
}

std::uint32_t
MemberFacts::localIndex(BlockId id) const
{
    auto it = index_.find(id);
    return it == index_.end() ? invalidNode : it->second;
}

MemberFacts
buildMemberFacts(const ProgramFacts &pf,
                 const std::vector<const BasicBlock *> &members)
{
    MemberFacts mf;
    mf.members = members;
    const std::uint32_t k =
        static_cast<std::uint32_t>(members.size());
    mf.graph = DiGraph(k);
    for (std::uint32_t i = 0; i < k; ++i)
        mf.index_.emplace(members[i]->id(), i);
    for (std::uint32_t i = 0; i < k; ++i)
        for (std::uint32_t j = 0; j < k; ++j)
            if (pf.possibleEdge(*members[i], *members[j]))
                mf.graph.addEdge(i, j);
    mf.cfg = CfgFacts::compute(mf.graph, 0);
    for (std::uint32_t id = 0; id < mf.cfg.sccCount; ++id)
        if (mf.cfg.sccIsCycle[id])
            mf.hasCycle = true;
    return mf;
}

const ProgramFacts &
AnalysisManager::facts(const Program &prog)
{
    auto it = programs_.find(&prog);
    if (it != programs_.end() &&
        it->second->fingerprint != programFingerprint(prog)) {
        // The Program variable was reassigned under this address:
        // drop the stale facts (and every region fact — regions may
        // point into the replaced program) instead of serving them.
        ++stats_.staleInvalidations;
        programs_.erase(it);
        inter_.erase(&prog);
        regions_.clear();
        it = programs_.end();
    }
    if (it == programs_.end()) {
        ++stats_.programMisses;
        it = programs_
                 .emplace(&prog, std::make_unique<ProgramFacts>(
                                     buildProgramFacts(prog)))
                 .first;
    } else {
        ++stats_.programHits;
    }
    return *it->second;
}

const InterFacts &
AnalysisManager::interFacts(const Program &prog)
{
    // Resolve the program facts first: the staleness guard lives
    // there, and a stale hit drops the interprocedural entry too.
    const ProgramFacts &pf = facts(prog);
    auto it = inter_.find(&prog);
    if (it == inter_.end()) {
        ++stats_.interMisses;
        it = inter_
                 .emplace(&prog, std::make_unique<InterFacts>(
                                     buildInterFacts(pf)))
                 .first;
    } else {
        ++stats_.interHits;
    }
    return *it->second;
}

const MemberFacts &
AnalysisManager::regionFacts(const Program &prog, const Region &region)
{
    // Resolve the program facts first: a stale-program invalidation
    // clears regions_, so the lookup below never returns member
    // facts built against replaced program content.
    const ProgramFacts &pf = facts(prog);
    auto it = regions_.find(&region);
    if (it == regions_.end()) {
        ++stats_.regionMisses;
        it = regions_
                 .emplace(&region,
                          std::make_unique<MemberFacts>(buildMemberFacts(
                              pf, region.blocks())))
                 .first;
    } else {
        ++stats_.regionHits;
    }
    return *it->second;
}

void
AnalysisManager::invalidate(const Program &prog)
{
    programs_.erase(&prog);
    inter_.erase(&prog);
    // Region identity is not tracked per program; drop everything.
    regions_.clear();
}

} // namespace analysis
} // namespace rsel
