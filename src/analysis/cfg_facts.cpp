#include "analysis/cfg_facts.hpp"

#include <algorithm>
#include <utility>

namespace rsel {
namespace analysis {

void
DiGraph::addEdge(std::uint32_t from, std::uint32_t to)
{
    std::vector<std::uint32_t> &out = succs_[from];
    if (std::find(out.begin(), out.end(), to) != out.end())
        return;
    out.push_back(to);
    ++edges_;
}

bool
DiGraph::hasEdge(std::uint32_t from, std::uint32_t to) const
{
    const std::vector<std::uint32_t> &out = succs_[from];
    return std::find(out.begin(), out.end(), to) != out.end();
}

namespace {

/** Post order of the nodes reachable from `entry` (iterative DFS). */
std::vector<std::uint32_t>
postOrder(const DiGraph &g, std::uint32_t entry,
          std::vector<std::uint8_t> &reachable)
{
    std::vector<std::uint32_t> post;
    if (g.size() == 0 || entry >= g.size())
        return post;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack;
    reachable[entry] = 1;
    stack.emplace_back(entry, 0);
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < g.succs(node).size()) {
            const std::uint32_t succ = g.succs(node)[child++];
            if (!reachable[succ]) {
                reachable[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            post.push_back(node);
            stack.pop_back();
        }
    }
    return post;
}

/**
 * Cooper–Harvey–Kennedy: iterate "idom[n] = intersect of processed
 * preds" over reverse post order to a fixpoint.
 */
void
computeDominators(const CfgFacts &f, std::vector<std::uint32_t> &idom)
{
    if (f.rpo.empty())
        return;
    std::vector<std::uint32_t> order(idom.size(), invalidNode);
    for (std::uint32_t i = 0; i < f.rpo.size(); ++i)
        order[f.rpo[i]] = i;

    const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
        while (a != b) {
            while (order[a] > order[b])
                a = idom[a];
            while (order[b] > order[a])
                b = idom[b];
        }
        return a;
    };

    idom[f.entry] = f.entry;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const std::uint32_t node : f.rpo) {
            if (node == f.entry)
                continue;
            std::uint32_t best = invalidNode;
            for (const std::uint32_t pred : f.preds[node]) {
                if (idom[pred] == invalidNode)
                    continue; // unreachable or not yet processed
                best = best == invalidNode ? pred
                                           : intersect(pred, best);
            }
            if (best != invalidNode && idom[node] != best) {
                idom[node] = best;
                changed = true;
            }
        }
    }
}

/** Iterative Tarjan SCC over every node (reachable or not). */
void
computeSccs(const DiGraph &g, CfgFacts &f)
{
    const std::uint32_t n = g.size();
    f.sccId.assign(n, invalidNode);
    std::vector<std::uint32_t> num(n, invalidNode), low(n, 0);
    std::vector<std::uint32_t> sccStack;
    std::vector<std::uint8_t> onStack(n, 0);
    std::uint32_t counter = 0;

    struct Frame
    {
        std::uint32_t node;
        std::size_t child;
    };
    std::vector<Frame> stack;

    for (std::uint32_t root = 0; root < n; ++root) {
        if (num[root] != invalidNode)
            continue;
        num[root] = low[root] = counter++;
        sccStack.push_back(root);
        onStack[root] = 1;
        stack.push_back({root, 0});
        while (!stack.empty()) {
            Frame &fr = stack.back();
            if (fr.child < g.succs(fr.node).size()) {
                const std::uint32_t succ = g.succs(fr.node)[fr.child++];
                if (num[succ] == invalidNode) {
                    num[succ] = low[succ] = counter++;
                    sccStack.push_back(succ);
                    onStack[succ] = 1;
                    stack.push_back({succ, 0});
                } else if (onStack[succ]) {
                    low[fr.node] = std::min(low[fr.node], num[succ]);
                }
            } else {
                if (low[fr.node] == num[fr.node]) {
                    const std::uint32_t id = f.sccCount++;
                    while (true) {
                        const std::uint32_t v = sccStack.back();
                        sccStack.pop_back();
                        onStack[v] = 0;
                        f.sccId[v] = id;
                        if (v == fr.node)
                            break;
                    }
                }
                const std::uint32_t done = fr.node;
                stack.pop_back();
                if (!stack.empty()) {
                    Frame &parent = stack.back();
                    low[parent.node] =
                        std::min(low[parent.node], low[done]);
                }
            }
        }
    }

    std::vector<std::uint32_t> sizes(f.sccCount, 0);
    for (std::uint32_t v = 0; v < n; ++v)
        ++sizes[f.sccId[v]];
    f.sccIsCycle.assign(f.sccCount, 0);
    f.sccHasExit.assign(f.sccCount, 0);
    for (std::uint32_t id = 0; id < f.sccCount; ++id)
        if (sizes[id] > 1)
            f.sccIsCycle[id] = 1;
    for (std::uint32_t from = 0; from < n; ++from) {
        for (const std::uint32_t to : g.succs(from)) {
            if (f.sccId[from] == f.sccId[to]) {
                if (from == to)
                    f.sccIsCycle[f.sccId[from]] = 1;
            } else {
                f.sccHasExit[f.sccId[from]] = 1;
            }
        }
    }
}

/** Natural loops from reachable back edges a -> header. */
void
computeLoops(const DiGraph &g, CfgFacts &f)
{
    // header -> body (accumulated across all back edges to it).
    std::vector<std::vector<std::uint32_t>> bodies(g.size());
    std::vector<std::uint8_t> isHeader(g.size(), 0);
    for (std::uint32_t a = 0; a < g.size(); ++a) {
        if (!f.reachable[a])
            continue;
        for (const std::uint32_t header : g.succs(a)) {
            if (!f.reachable[header] || !f.dominates(header, a))
                continue;
            isHeader[header] = 1;
            // Classic backward walk from the latch to the header.
            std::vector<std::uint8_t> inBody(g.size(), 0);
            for (const std::uint32_t known : bodies[header])
                inBody[known] = 1;
            inBody[header] = 1;
            std::vector<std::uint32_t> work{a};
            while (!work.empty()) {
                const std::uint32_t v = work.back();
                work.pop_back();
                if (inBody[v])
                    continue;
                inBody[v] = 1;
                bodies[header].push_back(v);
                for (const std::uint32_t p : f.preds[v])
                    if (f.reachable[p])
                        work.push_back(p);
            }
        }
    }
    for (std::uint32_t header = 0; header < g.size(); ++header) {
        if (!isHeader[header])
            continue;
        NaturalLoop loop;
        loop.header = header;
        loop.body = std::move(bodies[header]);
        std::sort(loop.body.begin(), loop.body.end());
        loop.body.insert(loop.body.begin(), header);
        f.loops.push_back(std::move(loop));
    }
}

} // namespace

CfgFacts
CfgFacts::compute(const DiGraph &graph, std::uint32_t entry)
{
    const std::uint32_t n = graph.size();
    CfgFacts f;
    f.entry = entry;
    f.preds.assign(n, {});
    for (std::uint32_t from = 0; from < n; ++from)
        for (const std::uint32_t to : graph.succs(from))
            f.preds[to].push_back(from);

    f.reachable.assign(n, 0);
    const std::vector<std::uint32_t> post =
        postOrder(graph, entry, f.reachable);
    f.rpo.assign(post.rbegin(), post.rend());
    f.reachableCount = static_cast<std::uint32_t>(f.rpo.size());

    f.idom.assign(n, invalidNode);
    computeDominators(f, f.idom);
    computeSccs(graph, f);
    computeLoops(graph, f);
    return f;
}

bool
CfgFacts::dominates(std::uint32_t a, std::uint32_t b) const
{
    while (true) {
        if (b == a)
            return true;
        if (b >= idom.size() || b == entry || idom[b] == invalidNode)
            return false;
        b = idom[b];
    }
}

} // namespace analysis
} // namespace rsel
