#include "analysis/region_verifier.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rsel {
namespace analysis {

namespace {

std::string
regionObject(const RegionVerifyContext &ctx)
{
    std::string obj = "region";
    if (ctx.id != invalidRegion)
        obj += " " + std::to_string(ctx.id);
    if (!ctx.selector.empty())
        obj += " (" + ctx.selector + ")";
    return obj;
}

/**
 * The member pass: every block pointer must be the program's own
 * object for its id, with no duplicates. Returns false when the
 * member list is too broken for the structural passes to run on.
 */
bool
checkMembers(const std::vector<const BasicBlock *> &blocks,
             const RegionVerifyContext &ctx, DiagnosticEngine &diag)
{
    const std::string obj = regionObject(ctx);
    if (blocks.empty()) {
        diag.error("region-members", obj, "region has no blocks");
        return false;
    }
    const Program &prog = *ctx.prog;
    bool sound = true;
    std::unordered_set<BlockId> seen;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const BasicBlock *b = blocks[i];
        if (b == nullptr) {
            diag.error("region-members", obj,
                       "member " + std::to_string(i) + " is null");
            sound = false;
            continue;
        }
        if (b->id() >= prog.blocks().size()) {
            diag.error("region-members", obj,
                       "member " + std::to_string(i) + " has block id " +
                           std::to_string(b->id()) + " out of range");
            sound = false;
            continue;
        }
        if (&prog.block(b->id()) != b) {
            diag.error("region-members", obj,
                       "member " + std::to_string(i) + " (block " +
                           std::to_string(b->id()) +
                           ") is not the program's block object: "
                           "block-id aliasing across program copies");
            sound = false;
            continue;
        }
        if (!seen.insert(b->id()).second) {
            diag.error("region-members", obj,
                       "block " + std::to_string(b->id()) +
                           " appears more than once");
            sound = false;
        }
    }
    return sound;
}

void
checkSingleEntrance(const std::vector<const BasicBlock *> &blocks,
                    const RegionVerifyContext &ctx,
                    DiagnosticEngine &diag)
{
    if (ctx.cache == nullptr)
        return;
    const Addr entry = blocks.front()->startAddr();
    const Region *existing = ctx.cache->lookup(entry);
    if (existing != nullptr && existing->id() != ctx.id)
        diag.error("region-single-entrance", regionObject(ctx),
                   "entry address " + std::to_string(entry) +
                       " is already the entrance of live region " +
                       std::to_string(existing->id()));
}

void
checkConnectivity(const MemberFacts &mf, Region::Kind kind,
                  const RegionVerifyContext &ctx,
                  DiagnosticEngine &diag)
{
    const std::string obj = regionObject(ctx);
    if (kind == Region::Kind::Trace) {
        // The recorded path must chain along possible CFG edges.
        for (std::uint32_t i = 0; i + 1 < mf.members.size(); ++i)
            if (!mf.graph.hasEdge(i, i + 1))
                diag.error(
                    "region-connectivity", obj,
                    "no possible CFG edge from trace block " +
                        std::to_string(mf.members[i]->id()) +
                        " to its successor block " +
                        std::to_string(mf.members[i + 1]->id()));
        return;
    }
    // MultiPath: every member must be reachable from the entry
    // inside the member set (Figure 13's extraction property).
    for (std::uint32_t i = 0; i < mf.members.size(); ++i)
        if (!mf.cfg.reachable[i])
            diag.error("region-connectivity", obj,
                       "member block " +
                           std::to_string(mf.members[i]->id()) +
                           " is not reachable from the region entry "
                           "within the member set");
}

/**
 * LEI promotes the last executed iteration of a cycle, so a plain
 * LEI trace must span a cycle — unless its formation legitimately
 * truncated early. The exculpations mirror the stop conditions of
 * LeiSelector::formTrace exactly:
 *
 *  1. the tail cannot fall through (history gap at an unconditional
 *     transfer),
 *  2. the tail's fall-through address is not a block start,
 *  3. a possible successor of the tail was already a cached region
 *     entrance at submission time (stop at an existing region), or
 *  4. appending the smallest possible successor would exceed the
 *     configured maximum trace size.
 */
void
checkLeiCyclicity(const MemberFacts &mf, const ProgramFacts &pf,
                  const RegionVerifyContext &ctx,
                  DiagnosticEngine &diag)
{
    if (mf.hasCycle)
        return;

    const BasicBlock *tail = mf.members.back();
    if (!canFallThrough(tail->terminator()))
        return; // exculpation 1
    if (ctx.prog->fallThroughOf(*tail) == nullptr)
        return; // exculpation 2

    const std::vector<std::uint32_t> &succs =
        pf.graph.succs(tail->id());
    if (ctx.cache != nullptr)
        for (const std::uint32_t s : succs) {
            const Region *r = ctx.cache->lookup(
                ctx.prog->block(s).startAddr());
            if (r != nullptr && r->id() != ctx.id)
                return; // exculpation 3
        }
    if (ctx.maxTraceInsts != 0 && !succs.empty()) {
        std::uint64_t total = 0;
        for (const BasicBlock *b : mf.members)
            total += b->instCount();
        std::uint64_t minSucc =
            ctx.prog->block(succs.front()).instCount();
        for (const std::uint32_t s : succs)
            minSucc = std::min<std::uint64_t>(
                minSucc, ctx.prog->block(s).instCount());
        if (total + minSucc > ctx.maxTraceInsts)
            return; // exculpation 4
    }

    diag.error("lei-cyclicity", regionObject(ctx),
               "LEI trace does not span a cycle and no formation "
               "stop rule (existing region, size limit, history "
               "gap) explains the truncation");
}

/**
 * Independent recomputation of a region's exit-stub count and
 * spans-cycle flag from the member list (the same stub discipline
 * as Region construction, re-derived rather than read back).
 */
void
recomputeStubs(const std::vector<const BasicBlock *> &blocks,
               Region::Kind kind, std::uint32_t &stubs,
               bool &spansCycle)
{
    stubs = 0;
    spansCycle = false;
    const Addr top = blocks.front()->startAddr();
    std::unordered_set<Addr> memberAddrs;
    for (const BasicBlock *b : blocks)
        memberAddrs.insert(b->startAddr());

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const BasicBlock *b = blocks[i];
        const BasicBlock *next =
            i + 1 < blocks.size() ? blocks[i + 1] : nullptr;

        const auto stays = [&](Addr target) {
            if (kind == Region::Kind::Trace) {
                if (target == top) {
                    spansCycle = true;
                    return true;
                }
                return next != nullptr &&
                       target == next->startAddr();
            }
            if (memberAddrs.count(target) != 0) {
                if (target == top)
                    spansCycle = true;
                return true;
            }
            return false;
        };

        switch (b->terminator()) {
        case BranchKind::CondDirect:
            stubs += stays(b->takenTarget()) ? 0 : 1;
            stubs += stays(b->fallThroughAddr()) ? 0 : 1;
            break;
        case BranchKind::Jump:
        case BranchKind::Call:
            stubs += stays(b->takenTarget()) ? 0 : 1;
            break;
        case BranchKind::None:
            stubs += stays(b->fallThroughAddr()) ? 0 : 1;
            break;
        case BranchKind::IndirectJump:
        case BranchKind::IndirectCall:
        case BranchKind::Return:
            ++stubs; // indirect continuations always keep one stub
            break;
        case BranchKind::Halt:
            break;
        }
    }
}

} // namespace

void
RegionVerifier::runOnSpec(const RegionSpec &spec,
                          const RegionVerifyContext &ctx,
                          DiagnosticEngine &diag) const
{
    if (!checkMembers(spec.blocks, ctx, diag))
        return;
    checkSingleEntrance(spec.blocks, ctx, diag);
    const ProgramFacts &pf = manager_.facts(*ctx.prog);
    const MemberFacts mf = buildMemberFacts(pf, spec.blocks);
    checkConnectivity(mf, spec.kind, ctx, diag);
    if (spec.kind == Region::Kind::Trace && ctx.selector == "LEI")
        checkLeiCyclicity(mf, pf, ctx, diag);
}

void
RegionVerifier::runOnRegion(const Region &region,
                            const RegionVerifyContext &ctx,
                            DiagnosticEngine &diag) const
{
    if (!checkMembers(region.blocks(), ctx, diag))
        return;
    std::uint32_t stubs = 0;
    bool spansCycle = false;
    recomputeStubs(region.blocks(), region.kind(), stubs, spansCycle);
    if (stubs != region.exitStubCount())
        diag.error("region-exit-stubs", regionObject(ctx),
                   "region reports " +
                       std::to_string(region.exitStubCount()) +
                       " exit stubs but the member list implies " +
                       std::to_string(stubs));
    if (spansCycle != region.spansCycle())
        diag.error("region-exit-stubs", regionObject(ctx),
                   std::string("region reports spansCycle=") +
                       (region.spansCycle() ? "true" : "false") +
                       " but the member list implies " +
                       (spansCycle ? "true" : "false"));
}

void
checkDuplicationAccounting(const Program &prog, const CodeCache &cache,
                           const SimResult &result,
                           DiagnosticEngine &diag)
{
    const std::string pass = "duplication-accounting";
    const std::string obj = "cache (" + result.selector + ")";

    std::uint64_t insts = 0, stubs = 0;
    std::unordered_map<BlockId, std::uint32_t> copies;
    for (const Region &r : cache.regions()) {
        insts += r.instCount();
        stubs += r.exitStubCount();
        for (const BasicBlock *b : r.blocks())
            ++copies[b->id()];
    }
    std::uint64_t duplicated = 0;
    for (const auto &[blockId, count] : copies)
        if (count > 1)
            duplicated +=
                static_cast<std::uint64_t>(count - 1) *
                prog.block(blockId).instCount();

    const auto mismatch = [&](const char *what, std::uint64_t expect,
                              std::uint64_t got) {
        diag.error(pass, obj,
                   std::string(what) + ": SimResult reports " +
                       std::to_string(got) +
                       " but the cache contents imply " +
                       std::to_string(expect));
    };
    if (result.duplicatedInsts != duplicated)
        mismatch("duplicated instructions", duplicated,
                 result.duplicatedInsts);
    if (result.expansionInsts != insts)
        mismatch("expansion instructions", insts,
                 result.expansionInsts);
    if (result.exitStubs != stubs)
        mismatch("exit stubs", stubs, result.exitStubs);
    if (result.regionCount != cache.regionCount())
        mismatch("region count", cache.regionCount(),
                 result.regionCount);
}

const std::vector<std::string> &
RegionVerifier::passNames()
{
    static const std::vector<std::string> names = {
        "region-members",      "region-single-entrance",
        "region-connectivity", "lei-cyclicity",
        "region-exit-stubs",   "duplication-accounting"};
    return names;
}

} // namespace analysis
} // namespace rsel
