#include "analysis/inter_facts.hpp"

#include <algorithm>

namespace rsel {
namespace analysis {

InterFacts
buildInterFacts(const ProgramFacts &pf)
{
    const Program &prog = *pf.prog;
    InterFacts inf;
    inf.callGraph = buildCallGraph(pf);
    const CallGraph &cg = inf.callGraph;
    const std::uint32_t nFuncs =
        static_cast<std::uint32_t>(prog.functions().size());
    inf.summaries.resize(nFuncs);

    // Local facts, in bottom-up order. The order is not needed for
    // correctness here (everything is per-function), but walking it
    // keeps the sweep aligned with how a summary consumer would run
    // and exercises the order on every build.
    for (const FuncId f : cg.bottomUp) {
        const Function &fn = prog.function(f);
        FuncSummary &s = inf.summaries[f];
        s.func = f;
        for (BlockId b = fn.firstBlock; b < fn.lastBlock; ++b) {
            const BasicBlock &bb = prog.block(b);
            ++s.blockCount;
            s.insts += bb.instCount();
            s.bytes += bb.sizeBytes();
            s.maxLoopDepth =
                std::max(s.maxLoopDepth, cg.blockLoopDepth[b]);
            if (bb.terminator() == BranchKind::Return)
                s.hasReturn = true;
        }
        s.callSites =
            static_cast<std::uint32_t>(cg.sitesOf[f].size());
        s.fanIn = cg.fanIn[f];
        s.leaf = s.callSites == 0;
        s.recursive = cg.recursive[f] != 0;
    }

    // Transitive closure over calls: closure(f) = {f} ∪ ⋃ closure(g)
    // for call edges f -> g. Backward on the call graph (a node's
    // input is the meet over its successors' outputs) with the
    // powerset lattice; monotone, so the fixpoint is sound on
    // recursive SCCs.
    const BitsetLattice lattice(nFuncs);
    auto res = solveDataflow(
        cg.graph, cg.cfg, DataflowDirection::Backward, lattice,
        [](std::uint32_t node, BitsetLattice::Value in) {
            BitsetLattice::setBit(in, node);
            return in;
        });
    inf.dataflowTransfers = res.transfersRun;
    inf.converged = res.converged;
    inf.closure = std::move(res.out);

    for (FuncId f = 0; f < nFuncs; ++f) {
        FuncSummary &s = inf.summaries[f];
        for (FuncId g = 0; g < nFuncs; ++g) {
            if (!BitsetLattice::testBit(inf.closure[f], g))
                continue;
            ++s.closureFuncs;
            s.closureInsts += inf.summaries[g].insts;
            s.closureMaxLoopDepth = std::max(
                s.closureMaxLoopDepth, inf.summaries[g].maxLoopDepth);
        }
    }
    return inf;
}

} // namespace analysis
} // namespace rsel
