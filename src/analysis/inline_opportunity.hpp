/**
 * @file
 * Demand-driven inlining-opportunity analyzer.
 *
 * Way & Pollock's demand-driven inlining argument (PAPERS.md): the
 * win from crossing a call boundary at region-growth time is largest
 * at hot, structurally simple call sites, and the cost is the code
 * growth the inline commits the cache to. This analyzer scores every
 * call site on the static signals a cross-call selector would
 * consult *before* running:
 *
 *  - hot-loop residency (call block inside a natural loop — executes
 *    once per iteration);
 *  - small leaf callee (no further calls, tiny body — the classic
 *    always-profitable inline);
 *  - single-call-site callee (inlining duplicates nothing that
 *    remains live elsewhere);
 *  - return target rejoins the caller (fall-through landing pad in
 *    the caller's own layout — the region can close back up after
 *    the call, Way & Pollock's "rejoin" shape).
 *
 * Each opportunity also carries a *sound* duplication upper bound:
 * inlining the site can pull in at most the union of its callees'
 * call closures (`InterFacts::closure`), so the instruction mass of
 * that union bounds the code growth of any inlining decision at the
 * site, recursion collapsed to one materialized copy per function.
 * Scores are heuristic and report-only; the bounds are what the
 * simulator-ground-truth validation gates on.
 */

#ifndef RSEL_ANALYSIS_INLINE_OPPORTUNITY_HPP
#define RSEL_ANALYSIS_INLINE_OPPORTUNITY_HPP

#include <cstdint>
#include <vector>

#include "analysis/inter_facts.hpp"

namespace rsel {
namespace analysis {

/** Callee bodies at or under this instruction count are "small". */
constexpr std::uint64_t smallCalleeInsts = 24;

/** Signals and sound growth bound for one call site. */
struct InlineOpportunity
{
    /** Index into CallGraph::sites. */
    std::uint32_t site = 0;
    BlockId block = invalidBlock;
    FuncId caller = invalidFunc;
    /** Loop nesting depth of the call block. */
    std::uint32_t loopDepth = 0;
    bool hotLoop = false;
    bool smallLeafCallee = false;
    bool singleCallSite = false;
    bool returnRejoins = false;
    /** Sound bound: instruction mass of the union of the callees'
     *  call closures — the most any inline at this site can add. */
    std::uint64_t dupGrowthBoundInsts = 0;
    /** Heuristic rank value (higher = more attractive). */
    double score = 0.0;
};

/** Ranked opportunity table plus aggregate counters. */
struct OpportunityReport
{
    /** Descending score; ties break by ascending site index. */
    std::vector<InlineOpportunity> ranked;
    /** Sum of per-site bounds (sound bound on inlining *every*
     *  site independently; real growth shares duplicated bodies). */
    std::uint64_t totalDupGrowthBoundInsts = 0;
    std::uint32_t hotLoopSites = 0;
    std::uint32_t smallLeafSites = 0;
    std::uint32_t singleCallSiteSites = 0;
    std::uint32_t rejoinSites = 0;
};

/** Score every call site of the program behind `inf`. */
OpportunityReport analyzeInlineOpportunities(const InterFacts &inf);

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_INLINE_OPPORTUNITY_HPP
