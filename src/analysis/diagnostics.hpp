/**
 * @file
 * Diagnostics for the static analysis passes.
 *
 * Every verifier pass reports through a DiagnosticEngine: a flat,
 * append-only list of (severity, pass, object, message) records.
 * Errors are invariant violations — a malformed program or an
 * illegal region; warnings are lints — code that is legal but
 * suspicious (unreachable blocks, dead functions, no-exit cycles).
 * The engine renders as a `support/table` grid for the CLI and as
 * single-line strings for fatal exceptions, and keeps per-severity
 * counts so callers can gate on "any errors" cheaply.
 */

#ifndef RSEL_ANALYSIS_DIAGNOSTICS_HPP
#define RSEL_ANALYSIS_DIAGNOSTICS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace rsel {
namespace analysis {

/**
 * Thrown by verify-on-submit when a pass reports an error: the
 * message names the selector, the region and the failing pass.
 */
class VerifyError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** How bad a diagnostic is. */
enum class Severity : std::uint8_t {
    Error,   ///< Invariant violation: the object is malformed.
    Warning, ///< Lint: legal but suspicious.
    Note,    ///< Machine-readable fact: informational only.
};

/** Severity name as printed ("error" / "warning"). */
const char *severityName(Severity sev);

/** One finding of one pass about one object. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Pass that produced the finding (e.g. "region-connectivity"). */
    std::string pass;
    /** What it is about (e.g. "block 7", "region 3 (LEI)"). */
    std::string object;
    /** Human-readable explanation. */
    std::string message;

    /** "pass <pass>: <object>: <message>" — the one-line form. */
    std::string toString() const;
};

/** Collects diagnostics across passes; append-only. */
class DiagnosticEngine
{
  public:
    /** Record one error-severity diagnostic. */
    void error(const std::string &pass, const std::string &object,
               const std::string &message);

    /** Record one warning-severity diagnostic. */
    void warning(const std::string &pass, const std::string &object,
                 const std::string &message);

    /** Record one note-severity diagnostic (a fact). */
    void note(const std::string &pass, const std::string &object,
              const std::string &message);

    /** All diagnostics, in report order. */
    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

    /**
     * Diagnostics in the deterministic render order: sorted by pass,
     * then object, then severity, then message, with exact
     * duplicates suppressed. This is the order toTable() prints, so
     * CLI output is byte-stable for any insertion order (and hence
     * any job count).
     */
    std::vector<Diagnostic> stableUnique() const;

    std::size_t errorCount() const { return errors_; }
    std::size_t warningCount() const { return warnings_; }
    std::size_t noteCount() const { return notes_; }
    bool hasErrors() const { return errors_ != 0; }
    bool empty() const { return diagnostics_.empty(); }

    /** First error-severity diagnostic as a one-liner; "" if none. */
    std::string firstError() const;

    /**
     * First error at or after diagnostics()[start] as a one-liner;
     * "" if none. Lets incremental callers report only what their
     * own pass run added.
     */
    std::string firstErrorAfter(std::size_t start) const;

    /** "N errors, M warnings" (plus ", K notes" when any). */
    std::string summary() const;

    /**
     * Render the diagnostics as a support/table grid, in
     * stableUnique() order; the summary row names how many exact
     * duplicates were suppressed, if any.
     */
    Table toTable(const std::string &title) const;

  private:
    void report(Severity sev, const std::string &pass,
                const std::string &object, const std::string &message);

    std::vector<Diagnostic> diagnostics_;
    std::size_t errors_ = 0;
    std::size_t warnings_ = 0;
    std::size_t notes_ = 0;
};

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_DIAGNOSTICS_HPP
