#include "analysis/call_graph.hpp"

#include <algorithm>

namespace rsel {
namespace analysis {

namespace {

/**
 * Append the owning function of the block at `addr` to `out` (if any
 * block starts there). Target resolution mirrors the Executor: a
 * dynamic transfer lands at a block start; landing anywhere else is
 * a malformed program caught by the branch-targets verifier pass.
 */
void
addCalleeAt(const Program &prog, Addr addr, std::vector<FuncId> &out)
{
    if (const BasicBlock *tk = prog.blockAtAddr(addr))
        out.push_back(tk->func());
}

} // namespace

CallGraph
buildCallGraph(const ProgramFacts &pf)
{
    const Program &prog = *pf.prog;
    CallGraph cg;
    cg.prog = &prog;
    const std::uint32_t nFuncs =
        static_cast<std::uint32_t>(prog.functions().size());
    const std::uint32_t nBlocks =
        static_cast<std::uint32_t>(prog.blocks().size());
    cg.graph = DiGraph(nFuncs);
    cg.sitesOf.resize(nFuncs);
    cg.fanIn.assign(nFuncs, 0);
    cg.fanOut.assign(nFuncs, 0);
    cg.recursive.assign(nFuncs, 0);

    // Block-level natural-loop nesting depth: the number of loop
    // bodies (in the caller CFG, conservative return edges included)
    // a block belongs to. Same notion as the predictor's loop facts.
    cg.blockLoopDepth.assign(nBlocks, 0);
    for (const NaturalLoop &loop : pf.cfg.loops)
        for (const std::uint32_t node : loop.body)
            if (node < nBlocks)
                ++cg.blockLoopDepth[node];

    if (nBlocks != 0 && prog.entry() < nBlocks)
        cg.entryFunc = prog.block(prog.entry()).func();

    // One CallSite per call terminator, in block-id order.
    for (const BasicBlock &b : prog.blocks()) {
        const BranchKind kind = b.terminator();
        if (kind != BranchKind::Call && kind != BranchKind::IndirectCall)
            continue;
        CallSite site;
        site.block = b.id();
        site.caller = b.func();
        site.kind = kind;
        site.loopDepth = cg.blockLoopDepth[b.id()];
        // The return landing pad: fallThroughOf excludes calls
        // (canFallThrough is about *un-taken* control flow), so
        // resolve the address directly, like the executor's
        // fallPtr_ does.
        if (const BasicBlock *ft =
                prog.blockAtAddr(b.fallThroughAddr()))
            if (ft->func() == b.func())
                site.returnBlock = ft->id();
        if (kind == BranchKind::Call) {
            addCalleeAt(prog, b.takenTarget(), site.callees);
        } else if (prog.hasIndirectBehavior(b.id())) {
            for (const BlockId t : prog.indirectBehavior(b.id()).targets)
                if (t < nBlocks)
                    site.callees.push_back(prog.block(t).func());
        }
        std::sort(site.callees.begin(), site.callees.end());
        site.callees.erase(
            std::unique(site.callees.begin(), site.callees.end()),
            site.callees.end());
        const std::uint32_t idx =
            static_cast<std::uint32_t>(cg.sites.size());
        if (site.caller < nFuncs)
            cg.sitesOf[site.caller].push_back(idx);
        cg.sites.push_back(std::move(site));
    }

    // Edges + per-function fan counts.
    for (const CallSite &site : cg.sites) {
        if (site.caller >= nFuncs)
            continue;
        for (const FuncId callee : site.callees) {
            if (callee >= nFuncs)
                continue;
            cg.graph.addEdge(site.caller, callee);
            ++cg.fanIn[callee];
        }
    }
    for (FuncId f = 0; f < nFuncs; ++f)
        cg.fanOut[f] =
            static_cast<std::uint32_t>(cg.graph.succs(f).size());

    // Condensation facts. CfgFacts computes SCCs over *all* nodes,
    // so call-unreachable functions still get components and an
    // order slot.
    const std::uint32_t root =
        cg.entryFunc < nFuncs ? cg.entryFunc : invalidNode;
    cg.cfg = CfgFacts::compute(cg.graph, root);

    for (FuncId f = 0; f < nFuncs; ++f)
        cg.recursive[f] = cg.cfg.sccIsCycle[cg.cfg.sccId[f]];

    // Bottom-up order: ascending Tarjan completion id is reverse
    // topological over the condensation (callees complete first);
    // ties inside one SCC break by FuncId for determinism.
    cg.bottomUp.resize(nFuncs);
    for (FuncId f = 0; f < nFuncs; ++f)
        cg.bottomUp[f] = f;
    std::sort(cg.bottomUp.begin(), cg.bottomUp.end(),
              [&cg](FuncId a, FuncId b) {
                  if (cg.cfg.sccId[a] != cg.cfg.sccId[b])
                      return cg.cfg.sccId[a] < cg.cfg.sccId[b];
                  return a < b;
              });
    return cg;
}

} // namespace analysis
} // namespace rsel
