#include "analysis/program_verifier.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/inter_facts.hpp"

namespace rsel {
namespace analysis {

namespace {

std::string
blockObject(const BasicBlock &b)
{
    return "block " + std::to_string(b.id());
}

void
checkBranchTargets(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    const Program &prog = *pf.prog;
    const std::uint32_t n =
        static_cast<std::uint32_t>(prog.blocks().size());
    for (const BasicBlock &b : prog.blocks()) {
        switch (b.terminator()) {
        case BranchKind::CondDirect:
        case BranchKind::Jump:
        case BranchKind::Call:
            if (prog.blockAtAddr(b.takenTarget()) == nullptr)
                diag.error("branch-targets", blockObject(b),
                           "taken target " +
                               std::to_string(b.takenTarget()) +
                               " is not a block start");
            break;
        case BranchKind::IndirectJump:
        case BranchKind::IndirectCall:
            if (!prog.hasIndirectBehavior(b.id()))
                break; // reported by the behaviors pass
            for (const BlockId t :
                 prog.indirectBehavior(b.id()).targets)
                if (t >= n)
                    diag.error("branch-targets", blockObject(b),
                               "indirect target id " +
                                   std::to_string(t) +
                                   " is out of range");
            break;
        default:
            break;
        }
    }
}

void
checkFallthrough(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    const Program &prog = *pf.prog;
    for (const BasicBlock &b : prog.blocks()) {
        if (!canFallThrough(b.terminator()))
            continue;
        if (prog.fallThroughOf(b) == nullptr)
            diag.error("fallthrough", blockObject(b),
                       "fall-through address " +
                           std::to_string(b.fallThroughAddr()) +
                           " is not a block start");
    }
}

void
checkBehaviors(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    const Program &prog = *pf.prog;
    for (const BasicBlock &b : prog.blocks()) {
        if (b.terminator() == BranchKind::CondDirect) {
            if (!prog.hasCondBehavior(b.id())) {
                diag.error("behaviors", blockObject(b),
                           "conditional block has no behaviour "
                           "annotation");
                continue;
            }
            const CondBehavior &cb = prog.condBehavior(b.id());
            if (cb.kind == CondBehavior::Kind::Bernoulli &&
                cb.takenProbByPhase.empty())
                diag.error("behaviors", blockObject(b),
                           "Bernoulli branch has no per-phase "
                           "probabilities");
            if (cb.kind == CondBehavior::Kind::Loop &&
                (cb.tripMin < 1 || cb.tripMax < cb.tripMin))
                diag.error("behaviors", blockObject(b),
                           "loop latch has an empty trip range");
        } else if (b.terminator() == BranchKind::IndirectJump ||
                   b.terminator() == BranchKind::IndirectCall) {
            // Not isIndirect(): that also covers Return, which is
            // resolved through the call stack and has no annotation.
            if (!prog.hasIndirectBehavior(b.id())) {
                diag.error("behaviors", blockObject(b),
                           "indirect block has no behaviour "
                           "annotation");
                continue;
            }
            const IndirectBehavior &ib =
                prog.indirectBehavior(b.id());
            if (ib.targets.empty()) {
                diag.error("behaviors", blockObject(b),
                           "indirect block declares no targets");
                continue;
            }
            if (ib.weightsByPhase.empty())
                diag.error("behaviors", blockObject(b),
                           "indirect block has no per-phase weights");
            for (const std::vector<double> &w : ib.weightsByPhase)
                if (w.size() != ib.targets.size())
                    diag.error("behaviors", blockObject(b),
                               "weight vector size does not match "
                               "the target count");
        }
    }
}

void
checkEntry(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    const Program &prog = *pf.prog;
    if (prog.blocks().empty()) {
        diag.error("entry", "program", "program has no blocks");
        return;
    }
    if (prog.entry() >= prog.blocks().size()) {
        diag.error("entry", "program",
                   "entry block id " + std::to_string(prog.entry()) +
                       " is out of range");
        return;
    }
    for (const Function &f : pf.prog->functions())
        if (f.entry == prog.entry())
            return;
    diag.warning("entry", "program",
                 "entry block does not start any function");
}

void
lintUnreachable(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    constexpr std::size_t maxListed = 10;
    std::size_t unreachable = 0;
    for (const BasicBlock &b : pf.prog->blocks()) {
        if (pf.cfg.reachable[b.id()])
            continue;
        ++unreachable;
        if (unreachable <= maxListed)
            diag.warning("unreachable-code", blockObject(b),
                         "no possible path from the program entry "
                         "reaches this block");
    }
    if (unreachable > maxListed)
        diag.warning("unreachable-code", "program",
                     std::to_string(unreachable - maxListed) +
                         " further unreachable blocks not listed");
}

void
lintDeadFunctions(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    for (const Function &f : pf.prog->functions()) {
        bool live = false;
        for (BlockId id = f.firstBlock; id < f.lastBlock; ++id)
            if (id < pf.cfg.reachable.size() &&
                pf.cfg.reachable[id]) {
                live = true;
                break;
            }
        if (!live)
            diag.warning("dead-function", "function " + f.name,
                         "no block of this function is reachable");
    }
}

void
lintNoExitSccs(const ProgramFacts &pf, DiagnosticEngine &diag)
{
    const Program &prog = *pf.prog;
    // A reachable, cyclic component with no leaving edge and no Halt
    // terminator can never hand control back: a static livelock.
    std::vector<std::uint8_t> bad(pf.cfg.sccCount, 0);
    std::vector<std::uint32_t> witness(pf.cfg.sccCount, invalidNode);
    for (std::uint32_t id = 0; id < pf.cfg.sccCount; ++id)
        bad[id] = pf.cfg.sccIsCycle[id] && !pf.cfg.sccHasExit[id];
    for (const BasicBlock &b : prog.blocks()) {
        const std::uint32_t id = pf.cfg.sccId[b.id()];
        if (!bad[id])
            continue;
        if (!pf.cfg.reachable[b.id()] ||
            b.terminator() == BranchKind::Halt)
            bad[id] = 0;
        else if (witness[id] == invalidNode)
            witness[id] = b.id();
    }
    for (std::uint32_t id = 0; id < pf.cfg.sccCount; ++id)
        if (bad[id] && witness[id] != invalidNode)
            diag.warning("no-exit-scc",
                         "scc containing block " +
                             std::to_string(witness[id]),
                         "reachable cycle with no exit edge and no "
                         "halt: the program cannot terminate");
}

void
checkCallGraphConsistency(const ProgramFacts &pf,
                          DiagnosticEngine &diag)
{
    const Program &prog = *pf.prog;
    const std::uint32_t n =
        static_cast<std::uint32_t>(prog.blocks().size());
    std::unordered_set<BlockId> entries;
    for (const Function &f : prog.functions())
        entries.insert(f.entry);

    for (const BasicBlock &b : prog.blocks()) {
        const BranchKind kind = b.terminator();
        if (kind != BranchKind::Call && kind != BranchKind::IndirectCall)
            continue;
        if (kind == BranchKind::Call) {
            // Unresolvable targets are branch-targets material; here
            // the target resolves but is mid-function.
            if (const BasicBlock *tk = prog.blockAtAddr(b.takenTarget()))
                if (entries.count(tk->id()) == 0)
                    diag.error("call-graph-consistency", blockObject(b),
                               "call target block " +
                                   std::to_string(tk->id()) +
                                   " is not a function entry");
        } else if (prog.hasIndirectBehavior(b.id())) {
            for (const BlockId t : prog.indirectBehavior(b.id()).targets)
                if (t < n && entries.count(t) == 0)
                    diag.error("call-graph-consistency", blockObject(b),
                               "indirect call declares non-entry "
                               "target block " +
                                   std::to_string(t));
        }
        // The return edge of the site: the matching Return lands at
        // the call's fall-through, which must be the caller's own
        // layout successor (ProgramBuilder enforces contiguity; a
        // hand-built program can violate it). fallThroughOf excludes
        // calls — it models un-taken control flow — so resolve the
        // address directly, like the executor's fallPtr_ does.
        const BasicBlock *ft = prog.blockAtAddr(b.fallThroughAddr());
        if (ft == nullptr)
            diag.error("call-graph-consistency", blockObject(b),
                       "call has no return landing pad at "
                       "fall-through address " +
                           std::to_string(b.fallThroughAddr()));
        else if (ft->func() != b.func())
            diag.error("call-graph-consistency", blockObject(b),
                       "return edge lands in function " +
                           std::to_string(ft->func()) +
                           ", not the calling function " +
                           std::to_string(b.func()));
    }
}

void
lintInterproceduralReachability(const CallGraph &cg,
                                DiagnosticEngine &diag)
{
    const Program &prog = *cg.prog;
    for (FuncId f = 0;
         f < static_cast<FuncId>(prog.functions().size()); ++f) {
        if (f == cg.entryFunc || cg.callReachable(f))
            continue;
        diag.warning("interprocedural-reachability",
                     "function " + prog.function(f).name,
                     "not reachable from the entry function through "
                     "call edges (may still be entered through "
                     "indirect jumps)");
    }
}

} // namespace

bool
ProgramVerifyOptions::passEnabled(const std::string &pass) const
{
    const auto contains = [&pass](const std::vector<std::string> &v) {
        return std::find(v.begin(), v.end(), pass) != v.end();
    };
    if (!only.empty() && !contains(only))
        return false;
    return !contains(skip);
}

void
ProgramVerifier::run(const Program &prog, DiagnosticEngine &diag,
                     const ProgramVerifyOptions &opts) const
{
    const ProgramFacts &pf = manager_.facts(prog);
    if (opts.passEnabled("entry"))
        checkEntry(pf, diag);
    if (prog.blocks().empty() ||
        prog.entry() >= prog.blocks().size())
        return; // the remaining passes assume a rooted CFG
    if (opts.passEnabled("branch-targets"))
        checkBranchTargets(pf, diag);
    if (opts.passEnabled("fallthrough"))
        checkFallthrough(pf, diag);
    if (opts.passEnabled("behaviors"))
        checkBehaviors(pf, diag);
    if (opts.passEnabled("call-graph-consistency"))
        checkCallGraphConsistency(pf, diag);
    if (!opts.lints)
        return;
    if (opts.passEnabled("unreachable-code"))
        lintUnreachable(pf, diag);
    if (opts.passEnabled("dead-function"))
        lintDeadFunctions(pf, diag);
    if (opts.passEnabled("no-exit-scc"))
        lintNoExitSccs(pf, diag);
    if (opts.passEnabled("interprocedural-reachability"))
        lintInterproceduralReachability(
            manager_.interFacts(prog).callGraph, diag);
}

const std::vector<std::string> &
ProgramVerifier::passNames()
{
    static const std::vector<std::string> names = {
        "entry",          "branch-targets",
        "fallthrough",    "behaviors",
        "call-graph-consistency",
        "unreachable-code", "dead-function",
        "no-exit-scc",    "interprocedural-reachability"};
    return names;
}

} // namespace analysis
} // namespace rsel
