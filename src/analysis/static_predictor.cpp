#include "analysis/static_predictor.hpp"

#include <algorithm>
#include <unordered_set>

#include "analysis/dataflow.hpp"
#include "analysis/inline_opportunity.hpp"
#include "selection/formation_model.hpp"

namespace rsel {
namespace analysis {

namespace {

/** Unbiased band of the paper's Figure 4 (near-50/50 branches). */
constexpr double unbiasedLo = 0.35;
constexpr double unbiasedHi = 0.65;

bool
isUnbiasedBranch(const Program &prog, const BasicBlock &b)
{
    if (b.terminator() != BranchKind::CondDirect ||
        !prog.hasCondBehavior(b.id()))
        return false;
    const CondBehavior &cb = prog.condBehavior(b.id());
    if (cb.kind != CondBehavior::Kind::Bernoulli)
        return false;
    for (const double p : cb.takenProbByPhase)
        if (p >= unbiasedLo && p <= unbiasedHi)
            return true;
    return false;
}

/**
 * Most exit stubs one copy of this block can contribute to a region
 * (Region::computeTraceStubs / computeMultiPathStubs): a conditional
 * stubs at most both arms; direct/fall-through terminators at most
 * one target; indirect transfers and returns always exactly one
 * stub; halt never.
 */
std::uint32_t
maxStubsOf(const BasicBlock &b)
{
    switch (b.terminator()) {
    case BranchKind::CondDirect:
        return 2;
    case BranchKind::None:
    case BranchKind::Jump:
    case BranchKind::Call:
        return 1;
    case BranchKind::IndirectJump:
    case BranchKind::IndirectCall:
    case BranchKind::Return:
        return 1;
    case BranchKind::Halt:
        return 0;
    }
    return 2;
}

/** Fewest stubs one copy must contribute (indirects always stub). */
std::uint32_t
minStubsOf(const BasicBlock &b)
{
    switch (b.terminator()) {
    case BranchKind::IndirectJump:
    case BranchKind::IndirectCall:
    case BranchKind::Return:
        return 1;
    default:
        return 0;
    }
}

/** Heuristic expected stubs per copy (one arm of a conditional
 *  usually leaves the region; straight-line code mostly stays). */
double
estStubsOf(const BasicBlock &b)
{
    switch (b.terminator()) {
    case BranchKind::CondDirect:
        return 1.0;
    case BranchKind::None:
    case BranchKind::Jump:
    case BranchKind::Call:
        return 0.3;
    case BranchKind::IndirectJump:
    case BranchKind::IndirectCall:
    case BranchKind::Return:
        return 1.0;
    case BranchKind::Halt:
        return 0.0;
    }
    return 1.0;
}

/** The subgraph of forward edges (target above the branch): acyclic
 *  by construction, the domain of the tail-duplication estimate. */
DiGraph
forwardEdgeSubgraph(const ProgramFacts &pf)
{
    const Program &prog = *pf.prog;
    DiGraph fwd(pf.graph.size());
    for (const BasicBlock &b : prog.blocks())
        for (const std::uint32_t s : pf.graph.succs(b.id()))
            if (!b.isBackwardTransferTo(prog.block(s).startAddr()))
                fwd.addEdge(b.id(), s);
    return fwd;
}

} // namespace

StaticReport
computeStaticReport(AnalysisManager &mgr, const Program &prog)
{
    const ProgramFacts &pf = mgr.facts(prog);
    const std::uint32_t n = pf.graph.size();

    StaticReport rep;
    rep.blockCount = n;
    rep.reachableBlocks = pf.cfg.reachableCount;
    rep.staticInsts = prog.staticInstCount();
    for (const BasicBlock &b : prog.blocks())
        if (pf.cfg.reachable[b.id()])
            rep.reachableInsts += b.instCount();

    // Loop nesting: each natural loop adds one level to its body.
    rep.loopDepth.assign(n, 0);
    rep.loopCount = static_cast<std::uint32_t>(pf.cfg.loops.size());
    for (const NaturalLoop &loop : pf.cfg.loops)
        for (const std::uint32_t node : loop.body)
            ++rep.loopDepth[node];
    for (const std::uint32_t d : rep.loopDepth)
        rep.maxLoopDepth = std::max(rep.maxLoopDepth, d);
    {
        std::vector<std::uint8_t> inner(n, 0);
        for (const NaturalLoop &loop : pf.cfg.loops) {
            if (rep.loopDepth[loop.header] < 2)
                continue;
            ++rep.innerLoops;
            for (const std::uint32_t node : loop.body)
                inner[node] = 1;
        }
        for (std::uint32_t u = 0; u < n; ++u)
            if (inner[u])
                rep.innerLoopDupInsts += prog.block(u).instCount();
    }

    // Unbiased branches and their loop placement.
    rep.unbiasedBranch.assign(n, 0);
    for (const BasicBlock &b : prog.blocks()) {
        if (!pf.cfg.reachable[b.id()] || !isUnbiasedBranch(prog, b))
            continue;
        rep.unbiasedBranch[b.id()] = 1;
        ++rep.unbiasedBranches;
        if (rep.loopDepth[b.id()] > 0)
            ++rep.unbiasedInLoops;
    }

    // Forward-edge subgraph: the frontier (backward dataflow) and
    // the tail-duplication estimate (forward dataflow per branch).
    const DiGraph fwd = forwardEdgeSubgraph(pf);
    const CfgFacts fwdCfg = CfgFacts::compute(fwd, pf.cfg.entry);
    {
        const DataflowResult<std::uint8_t> frontier =
            reachesAnyOf(fwd, fwdCfg, rep.unbiasedBranch);
        rep.dataflowTransfers += frontier.transfersRun;
        for (std::uint32_t u = 0; u < n; ++u)
            if (pf.cfg.reachable[u] && frontier.out[u])
                ++rep.frontierBlocks;
    }
    for (const BasicBlock &b : prog.blocks()) {
        if (!rep.unbiasedBranch[b.id()])
            continue;
        const BasicBlock *tk = prog.blockAtAddr(b.takenTarget());
        const BasicBlock *ft = prog.fallThroughOf(b);
        if (tk == nullptr || ft == nullptr || tk == ft)
            continue;
        const DataflowResult<BitsetLattice::Value> reach =
            reachingSources(fwd, fwdCfg, {tk->id(), ft->id()});
        rep.dataflowTransfers += reach.transfersRun;
        for (std::uint32_t u = 0; u < n; ++u)
            if (BitsetLattice::testBit(reach.out[u], 0) &&
                BitsetLattice::testBit(reach.out[u], 1))
                rep.tailDupEstInsts += prog.block(u).instCount();
    }

    // Cyclic blocks and cross-function trace separation.
    std::vector<std::uint8_t> cyclic(n, 0);
    for (std::uint32_t u = 0; u < n; ++u)
        if (pf.cfg.reachable[u] &&
            pf.cfg.sccIsCycle[pf.cfg.sccId[u]]) {
            cyclic[u] = 1;
            ++rep.cyclicBlocks;
        }
    {
        std::vector<std::unordered_set<FuncId>> sccFuncs(
            pf.cfg.sccCount);
        for (std::uint32_t u = 0; u < n; ++u)
            if (cyclic[u])
                sccFuncs[pf.cfg.sccId[u]].insert(prog.block(u).func());
        for (const std::unordered_set<FuncId> &funcs : sccFuncs) {
            if (funcs.size() <= 1)
                continue;
            ++rep.crossFuncCycles;
            rep.maxSeparationFuncs = std::max(
                rep.maxSeparationFuncs,
                static_cast<std::uint32_t>(funcs.size()));
        }
    }

    // Per-selector predictions from the formation models.
    for (const FormationModel &model : allFormationModels()) {
        SelectorPrediction p;
        p.selector = model.selector;

        std::vector<std::uint32_t> entrances;
        std::uint32_t cyclicEntrances = 0;
        for (std::uint32_t u = 0; u < n; ++u) {
            if (!pf.cfg.reachable[u])
                continue;
            switch (model.entrance) {
            case FormationModel::Entrance::NeedsPredecessor:
                if (pf.cfg.preds[u].empty())
                    continue;
                break;
            case FormationModel::Entrance::OnCycle:
                if (!cyclic[u])
                    continue;
                break;
            case FormationModel::Entrance::AnyReachable:
                break;
            }
            entrances.push_back(u);
            if (cyclic[u])
                ++cyclicEntrances;
        }
        p.entranceCount =
            static_cast<std::uint32_t>(entrances.size());
        p.maxRegions = p.entranceCount;
        p.maxSpanningRegions = cyclicEntrances;
        p.spanningRatioEst =
            p.entranceCount == 0
                ? 0.0
                : static_cast<double>(cyclicEntrances) /
                      static_cast<double>(p.entranceCount);

        const DataflowResult<BitsetLattice::Value> reach =
            reachingSources(pf.graph, pf.cfg, entrances);
        rep.dataflowTransfers += reach.transfersRun;

        double estNum = 0.0, estDen = 0.0;
        double loopEstNum = 0.0, loopEstDen = 0.0;
        for (std::uint32_t u = 0; u < n; ++u) {
            const std::uint32_t copies =
                BitsetLattice::countBits(reach.out[u]);
            if (copies == 0)
                continue;
            const BasicBlock &b = prog.block(u);
            const std::uint64_t insts = b.instCount();
            p.expansionBoundInsts += copies * insts;
            if (copies > 1)
                p.dupBoundInsts += (copies - 1) * insts;
            const double instsD = static_cast<double>(insts);
            p.stubDensityMax = std::max(
                p.stubDensityMax,
                static_cast<double>(maxStubsOf(b)) / instsD);
            estNum += estStubsOf(b);
            estDen += instsD;
            if (rep.loopDepth[u] > 0) {
                loopEstNum += estStubsOf(b);
                loopEstDen += instsD;
            }
        }
        // Lower density bound: the loosest per-copy minimum over the
        // candidate member set.
        p.stubDensityMin = p.expansionBoundInsts == 0 ? 0.0 : 1e9;
        for (std::uint32_t u = 0; u < n; ++u) {
            if (BitsetLattice::countBits(reach.out[u]) == 0)
                continue;
            const BasicBlock &b = prog.block(u);
            p.stubDensityMin = std::min(
                p.stubDensityMin,
                static_cast<double>(minStubsOf(b)) /
                    static_cast<double>(b.instCount()));
        }
        // Estimate over loop blocks (where selection concentrates)
        // when the program has any, else over all candidates.
        const double num = loopEstDen > 0.0 ? loopEstNum : estNum;
        const double den = loopEstDen > 0.0 ? loopEstDen : estDen;
        p.stubDensityEst =
            den > 0.0 ? model.stubDiscount * num / den : 0.0;

        rep.predictions.push_back(std::move(p));
    }

    // Interprocedural layer: call-graph shape plus the aggregate
    // inlining-opportunity bound (per-site detail stays behind
    // rselect-analyze --interprocedural).
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;
    rep.funcCount =
        static_cast<std::uint32_t>(prog.functions().size());
    rep.callSiteCount =
        static_cast<std::uint32_t>(cg.sites.size());
    for (FuncId f = 0; f < rep.funcCount; ++f) {
        if (cg.callReachable(f))
            ++rep.callReachableFuncs;
        if (cg.recursive[f])
            ++rep.recursiveFuncs;
    }
    const OpportunityReport opp = analyzeInlineOpportunities(inf);
    rep.hotCallSites = opp.hotLoopSites;
    rep.inlineDupGrowthBoundInsts = opp.totalDupGrowthBoundInsts;
    rep.dataflowTransfers += inf.dataflowTransfers;

    return rep;
}

const SelectorPrediction *
findPrediction(const StaticReport &report, const std::string &selector)
{
    for (const SelectorPrediction &p : report.predictions)
        if (p.selector == selector)
            return &p;
    return nullptr;
}

std::vector<std::string>
checkPrediction(const SelectorPrediction &p, const SimResult &res)
{
    std::vector<std::string> violations;
    const auto flag = [&violations](const std::string &msg) {
        violations.push_back(msg);
    };
    // Float bounds get a small absolute slack so exact-equality
    // cases (e.g. one stub per copied instruction) never flap.
    constexpr double eps = 1e-6;

    if (res.regionCount > p.maxRegions)
        flag("max-regions: selected " +
             std::to_string(res.regionCount) + " regions > bound " +
             std::to_string(p.maxRegions));
    if (res.spanningRegions > p.maxSpanningRegions)
        flag("spanning-bound: " + std::to_string(res.spanningRegions) +
             " spanning regions > bound " +
             std::to_string(p.maxSpanningRegions));
    if (res.duplicatedInsts > p.dupBoundInsts)
        flag("dup-bound: " + std::to_string(res.duplicatedInsts) +
             " duplicated insts > bound " +
             std::to_string(p.dupBoundInsts));
    if (res.expansionInsts > p.expansionBoundInsts)
        flag("expansion-bound: " + std::to_string(res.expansionInsts) +
             " expanded insts > bound " +
             std::to_string(p.expansionBoundInsts));
    const double expansion = static_cast<double>(res.expansionInsts);
    const double stubs = static_cast<double>(res.exitStubs);
    if (stubs > p.stubDensityMax * expansion + eps)
        flag("stub-density-max: " + std::to_string(res.exitStubs) +
             " stubs > " + std::to_string(p.stubDensityMax) +
             " per inst over " + std::to_string(res.expansionInsts) +
             " insts");
    if (stubs + eps < p.stubDensityMin * expansion)
        flag("stub-density-min: " + std::to_string(res.exitStubs) +
             " stubs < " + std::to_string(p.stubDensityMin) +
             " per inst over " + std::to_string(res.expansionInsts) +
             " insts");
    for (const RegionStats &r : res.regions)
        if (r.exitStubs > 2u * r.blockCount) {
            flag("per-region-stubs: region " + std::to_string(r.id) +
                 " has " + std::to_string(r.exitStubs) +
                 " stubs over " + std::to_string(r.blockCount) +
                 " blocks");
            break;
        }
    return violations;
}

void
emitStaticFacts(const StaticReport &rep, const Program &prog,
                const ProgramFacts &pf, DiagnosticEngine &diag)
{
    diag.note("loop-nesting", "program",
              "loops=" + std::to_string(rep.loopCount) +
                  " maxDepth=" + std::to_string(rep.maxLoopDepth) +
                  " innerLoops=" + std::to_string(rep.innerLoops));
    diag.note("unbiased-frontier", "program",
              "unbiased=" + std::to_string(rep.unbiasedBranches) +
                  " inLoops=" + std::to_string(rep.unbiasedInLoops) +
                  " frontierBlocks=" +
                  std::to_string(rep.frontierBlocks));
    diag.note("net-duplication", "program",
              "tailDupEstInsts=" +
                  std::to_string(rep.tailDupEstInsts) +
                  " innerLoopDupInsts=" +
                  std::to_string(rep.innerLoopDupInsts));
    if (const SelectorPrediction *lei = findPrediction(rep, "LEI"))
        diag.note("lei-coverage", "program",
                  "cyclicEntrances=" +
                      std::to_string(lei->entranceCount) +
                      " maxSpanning=" +
                      std::to_string(lei->maxSpanningRegions));
    for (const SelectorPrediction &p : rep.predictions)
        diag.note("exit-stubs", "selector " + p.selector,
                  "densityMin=" + std::to_string(p.stubDensityMin) +
                      " densityMax=" +
                      std::to_string(p.stubDensityMax) +
                      " est=" + std::to_string(p.stubDensityEst));
    diag.note("trace-separation", "program",
              "crossFuncCycles=" +
                  std::to_string(rep.crossFuncCycles) +
                  " maxFuncs=" +
                  std::to_string(rep.maxSeparationFuncs));
    diag.note("interprocedural", "program",
              "funcs=" + std::to_string(rep.funcCount) +
                  " callSites=" + std::to_string(rep.callSiteCount) +
                  " callReachable=" +
                  std::to_string(rep.callReachableFuncs) +
                  " recursive=" +
                  std::to_string(rep.recursiveFuncs));
    diag.note("inline-opportunity", "program",
              "hotCallSites=" + std::to_string(rep.hotCallSites) +
                  " dupGrowthBoundInsts=" +
                  std::to_string(rep.inlineDupGrowthBoundInsts));

    // Lint: predicted duplication dwarfing the program itself.
    if (rep.reachableInsts > 0 &&
        rep.tailDupEstInsts + rep.innerLoopDupInsts >
            rep.reachableInsts)
        diag.warning("duplication-explosion", "program",
                     "predicted tail/inner-loop duplication (" +
                         std::to_string(rep.tailDupEstInsts +
                                        rep.innerLoopDupInsts) +
                         " insts) exceeds the reachable code (" +
                         std::to_string(rep.reachableInsts) +
                         " insts)");
    // Lint: k unbiased branches in one loop body = 2^k trace paths.
    for (const NaturalLoop &loop : pf.cfg.loops) {
        std::uint32_t unbiased = 0;
        for (const std::uint32_t node : loop.body)
            if (rep.unbiasedBranch[node])
                ++unbiased;
        if (unbiased >= 3)
            diag.warning(
                "duplication-explosion",
                "loop at block " + std::to_string(loop.header),
                std::to_string(unbiased) +
                    " unbiased branches in one loop body (path "
                    "explosion risk)");
    }
    // Lint: separation-prone call chains (cycles through >= 3
    // functions force every selector to fragment traces).
    if (rep.maxSeparationFuncs >= 3) {
        std::uint32_t witness = invalidNode;
        std::uint32_t funcsSpanned = 0;
        std::vector<std::unordered_set<FuncId>> sccFuncs(
            pf.cfg.sccCount);
        for (const BasicBlock &b : prog.blocks())
            if (pf.cfg.reachable[b.id()] &&
                pf.cfg.sccIsCycle[pf.cfg.sccId[b.id()]])
                sccFuncs[pf.cfg.sccId[b.id()]].insert(b.func());
        for (const BasicBlock &b : prog.blocks()) {
            const std::uint32_t funcs = static_cast<std::uint32_t>(
                sccFuncs[pf.cfg.sccId[b.id()]].size());
            if (funcs >= 3 && funcs > funcsSpanned) {
                witness = b.id();
                funcsSpanned = funcs;
            }
        }
        if (witness != invalidNode)
            diag.warning("separation-prone",
                         "scc containing block " +
                             std::to_string(witness),
                         "call-chain cycle spans " +
                             std::to_string(funcsSpanned) +
                             " functions; traces will separate at "
                             "every call boundary");
    }
}

const std::vector<std::string> &
analyzePassNames()
{
    static const std::vector<std::string> names = {
        "loop-nesting",
        "unbiased-frontier",
        "net-duplication",
        "lei-coverage",
        "exit-stubs",
        "trace-separation",
        "interprocedural",
        "inline-opportunity",
        "duplication-explosion",
        "separation-prone",
    };
    return names;
}

} // namespace analysis
} // namespace rsel
