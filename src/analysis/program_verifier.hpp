/**
 * @file
 * Static verifier passes over a guest Program.
 *
 * Error-severity passes (a violation means the program is malformed
 * and the simulator's behaviour on it is undefined):
 *
 *  - `branch-targets`     static taken targets of direct branches
 *                         resolve to block starts; declared indirect
 *                         targets are in range.
 *  - `fallthrough`        every fall-through-capable terminator has
 *                         a block at its fall-through address.
 *  - `behaviors`          conditional blocks carry a conditional
 *                         behaviour (with at least one phase
 *                         probability), indirect blocks carry a
 *                         non-empty target set with matching weight
 *                         vectors.
 *  - `entry`              the program entry exists and starts a
 *                         function.
 *  - `call-graph-consistency`
 *                         every call terminator targets a function
 *                         entry (direct target and declared indirect
 *                         targets alike) and its return edge lands
 *                         at the caller's own layout successor.
 *
 * Warning-severity lints (legal but suspicious; reported, never
 * fatal):
 *
 *  - `unreachable-code`   blocks no possible edge path reaches from
 *                         the entry.
 *  - `dead-function`      functions none of whose blocks are
 *                         reachable.
 *  - `no-exit-scc`        a reachable strongly connected component
 *                         with no leaving edge and no Halt — the
 *                         program can statically never terminate.
 *  - `interprocedural-reachability`
 *                         functions the entry function cannot reach
 *                         through call edges (candidates the
 *                         cross-call selector can never grow into).
 */

#ifndef RSEL_ANALYSIS_PROGRAM_VERIFIER_HPP
#define RSEL_ANALYSIS_PROGRAM_VERIFIER_HPP

#include <string>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "analysis/diagnostics.hpp"

namespace rsel {
namespace analysis {

/** Which program passes to run. */
struct ProgramVerifyOptions
{
    /** Run the warning-severity lint passes too. */
    bool lints = true;
    /** When non-empty, run only the named passes. */
    std::vector<std::string> only;
    /** Skip the named passes (applied after `only`). */
    std::vector<std::string> skip;

    /** True if the named pass should run under this filter. */
    bool passEnabled(const std::string &pass) const;
};

/** Runs the Program pass set; facts come from the manager's cache. */
class ProgramVerifier
{
  public:
    explicit ProgramVerifier(AnalysisManager &manager)
        : manager_(manager)
    {
    }

    /** Run all (enabled) passes on `prog`, reporting into `diag`. */
    void run(const Program &prog, DiagnosticEngine &diag,
             const ProgramVerifyOptions &opts = {}) const;

    /** Names of every pass, error passes first. */
    static const std::vector<std::string> &passNames();

  private:
    AnalysisManager &manager_;
};

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_PROGRAM_VERIFIER_HPP
