/**
 * @file
 * Graph facts over a rooted directed graph: the dataflow core of the
 * analysis layer.
 *
 * Everything the verifier passes need about a CFG is derived once
 * from a plain adjacency list (`DiGraph`) and cached in a `CfgFacts`
 * value: predecessor lists, reachability from the entry, reverse
 * post order, the dominator tree (Cooper–Harvey–Kennedy iterative
 * algorithm over reverse post order), strongly connected components
 * (iterative Tarjan), and natural loops (back edges `a -> b` where
 * `b` dominates `a`, bodies collected by the classic backward walk).
 *
 * The graph is node-index based and knows nothing about blocks or
 * programs; `analysis_manager` adapts guest `Program`s and region
 * member sets onto it.
 */

#ifndef RSEL_ANALYSIS_CFG_FACTS_HPP
#define RSEL_ANALYSIS_CFG_FACTS_HPP

#include <cstdint>
#include <vector>

namespace rsel {
namespace analysis {

/** A rooted directed graph as an adjacency list over [0, size). */
class DiGraph
{
  public:
    explicit DiGraph(std::uint32_t nodeCount)
        : succs_(nodeCount)
    {
    }

    /** Number of nodes. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(succs_.size());
    }

    /** Add the edge from -> to; duplicate edges are kept out. */
    void addEdge(std::uint32_t from, std::uint32_t to);

    /** Successor list of a node. */
    const std::vector<std::uint32_t> &succs(std::uint32_t node) const
    {
        return succs_[node];
    }

    /** True if from -> to is an edge. */
    bool hasEdge(std::uint32_t from, std::uint32_t to) const;

    /** Total edge count. */
    std::size_t edgeCount() const { return edges_; }

  private:
    std::vector<std::vector<std::uint32_t>> succs_;
    std::size_t edges_ = 0;
};

/** Sentinel node index ("no node"). */
constexpr std::uint32_t invalidNode = 0xffffffffu;

/** One natural loop: a header plus its body (header included). */
struct NaturalLoop
{
    std::uint32_t header = invalidNode;
    /** Loop body node indices, header first, rest sorted. */
    std::vector<std::uint32_t> body;
};

/** Facts derived once from a (graph, entry) pair. */
struct CfgFacts
{
    /** Entry node the facts are rooted at. */
    std::uint32_t entry = invalidNode;

    /** Predecessor lists (over all edges, reachable or not). */
    std::vector<std::vector<std::uint32_t>> preds;

    /** Reachability from the entry. */
    std::vector<std::uint8_t> reachable;
    std::uint32_t reachableCount = 0;

    /**
     * Reverse post order of the nodes reachable from the entry
     * (entry first).
     */
    std::vector<std::uint32_t> rpo;

    /**
     * Immediate dominator per node; `idom[entry] == entry`,
     * `invalidNode` for unreachable nodes.
     */
    std::vector<std::uint32_t> idom;

    /** Strongly connected component id per node (all nodes). */
    std::vector<std::uint32_t> sccId;
    std::uint32_t sccCount = 0;

    /**
     * Per component: does it contain a cycle (more than one node, or
     * a self edge)?
     */
    std::vector<std::uint8_t> sccIsCycle;

    /** Per component: does any edge leave it? */
    std::vector<std::uint8_t> sccHasExit;

    /** Natural loops of reachable back edges, by header. */
    std::vector<NaturalLoop> loops;

    /** Compute every fact for `graph` rooted at `entry`. */
    static CfgFacts compute(const DiGraph &graph, std::uint32_t entry);

    /** True if `a` dominates `b` (reflexive). @pre b reachable. */
    bool dominates(std::uint32_t a, std::uint32_t b) const;
};

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_CFG_FACTS_HPP
