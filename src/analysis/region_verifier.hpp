/**
 * @file
 * Static verifier passes over selector-emitted regions.
 *
 * A region is checked twice on its way into the code cache: once as
 * the raw `RegionSpec` the selector handed back (before `Region`
 * construction — so a malformed spec is reported instead of hitting
 * a runtime assertion), and once as the constructed `Region` (the
 * exit-stub accounting cross-check needs the constructed object).
 *
 * Error-severity passes:
 *
 *  - `region-members`         non-empty, no duplicate members, and
 *                             every member pointer is the program's
 *                             own block object for its id — the
 *                             pass that catches block-id aliasing
 *                             (a selector handing blocks of a
 *                             different Program copy).
 *  - `region-single-entrance` the region's entry address is not
 *                             already a live cached entrance
 *                             (single-entrance property, paper
 *                             Section 2.2).
 *  - `region-connectivity`    trace members chain along possible
 *                             CFG edges; multi-path members are all
 *                             reachable from the entry within the
 *                             member set (paper Figure 13's region
 *                             extraction keeps only connected
 *                             blocks).
 *  - `region-exit-stubs`      the constructed Region's exit-stub
 *                             count and spans-cycle flag match an
 *                             independent recomputation from the
 *                             member list.
 *  - `lei-cyclicity`          a plain LEI trace must span a cycle
 *                             (paper Figures 5/6: LEI promotes
 *                             last-executed *iterations*), unless a
 *                             documented truncation exculpates it —
 *                             the trace stopped at an existing
 *                             region, at the size limit, or at a
 *                             history gap (non-fall-through tail or
 *                             dangling fall-through address).
 *
 * The `duplication-accounting` pass is a whole-cache check run at
 * the end of a simulation: it recomputes the paper's duplicated-
 * instruction, expansion, and exit-stub totals from the cache
 * contents and cross-checks the `SimResult`.
 */

#ifndef RSEL_ANALYSIS_REGION_VERIFIER_HPP
#define RSEL_ANALYSIS_REGION_VERIFIER_HPP

#include <string>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "analysis/diagnostics.hpp"
#include "metrics/sim_result.hpp"
#include "runtime/code_cache.hpp"
#include "selection/selector.hpp"

namespace rsel {
namespace analysis {

/** Context a region is verified in. */
struct RegionVerifyContext
{
    /** The program the region's blocks must belong to. */
    const Program *prog = nullptr;
    /** The code cache at submission time (may be null). */
    const CodeCache *cache = nullptr;
    /** Name of the emitting selector ("LEI", "NET", ...). */
    std::string selector;
    /**
     * LEI's maximum trace size, for the size-limit exculpation of
     * the cyclicity pass; 0 = unknown (exculpation unavailable).
     */
    std::uint32_t maxTraceInsts = 0;
    /** Region id the spec will receive (for diagnostics). */
    RegionId id = invalidRegion;
};

/** Runs the region pass set. */
class RegionVerifier
{
  public:
    explicit RegionVerifier(AnalysisManager &manager)
        : manager_(manager)
    {
    }

    /** Verify a raw selector-emitted spec (pre-construction). */
    void runOnSpec(const RegionSpec &spec,
                   const RegionVerifyContext &ctx,
                   DiagnosticEngine &diag) const;

    /** Verify a constructed Region (adds the exit-stub pass). */
    void runOnRegion(const Region &region,
                     const RegionVerifyContext &ctx,
                     DiagnosticEngine &diag) const;

    /** Names of every region pass, including the whole-cache
     *  duplication accountant. */
    static const std::vector<std::string> &passNames();

  private:
    AnalysisManager &manager_;
};

/**
 * Cross-check the SimResult's static duplication/expansion totals
 * against an independent recomputation from the cache contents.
 * Reports under pass "duplication-accounting".
 */
void checkDuplicationAccounting(const Program &prog,
                                const CodeCache &cache,
                                const SimResult &result,
                                DiagnosticEngine &diag);

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_REGION_VERIFIER_HPP
