/**
 * @file
 * Generic dataflow framework over `DiGraph`/`CfgFacts`.
 *
 * `solveDataflow` is a classic worklist fixpoint solver,
 * parameterized over:
 *
 *  - direction: `Forward` propagates along edges (a node's input is
 *    the meet over its predecessors' outputs), `Backward` against
 *    them (meet over successors);
 *  - lattice: a value type plus `bottom()`, `meetInto()` and
 *    `equal()` — the meet must be monotone or the solver may not
 *    terminate before the transfer budget;
 *  - transfer function: `Value transfer(node, Value in)`.
 *
 * The worklist is seeded in reverse post order (reverse RPO for
 * backward problems) so acyclic regions settle in one sweep; nodes
 * unreachable from the entry are appended in index order and get a
 * defined (usually bottom) value. Two canned lattices cover the
 * predictor suite: `BitsetLattice` (powerset, meet = union) and
 * `BoolOrLattice` (two-point, meet = or). Two canned analyses built
 * on them — multi-source reachability (`reachingSources`, forward)
 * and can-reach-target (`reachesAnyOf`, backward) — are what the
 * static region-quality predictors consume.
 */

#ifndef RSEL_ANALYSIS_DATAFLOW_HPP
#define RSEL_ANALYSIS_DATAFLOW_HPP

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "analysis/cfg_facts.hpp"

namespace rsel {
namespace analysis {

/** Which way facts flow along the edges. */
enum class DataflowDirection : std::uint8_t { Forward, Backward };

/** Outcome of one fixpoint run: the OUT value per node. */
template <typename Value> struct DataflowResult
{
    /** Post-transfer value per node index. */
    std::vector<Value> out;
    /** Transfer-function applications performed. */
    std::uint64_t transfersRun = 0;
    /** False iff the transfer budget ran out before the fixpoint. */
    bool converged = false;
};

/**
 * Run `transfer` to a fixpoint over `graph`. `cfg` must be the facts
 * of the same graph (the solver uses its predecessor lists and RPO).
 * `maxTransfers` bounds the work; 0 picks a budget far above the
 * need of any monotone lattice of height <= 64 * nodes.
 */
template <typename Lattice, typename Transfer>
DataflowResult<typename Lattice::Value>
solveDataflow(const DiGraph &graph, const CfgFacts &cfg,
              DataflowDirection dir, const Lattice &lattice,
              Transfer &&transfer, std::uint64_t maxTransfers = 0)
{
    using Value = typename Lattice::Value;
    const std::uint32_t n = graph.size();
    DataflowResult<Value> res;
    res.out.assign(n, lattice.bottom());
    res.converged = true;
    if (n == 0)
        return res;
    if (maxTransfers == 0)
        maxTransfers = 64ull * n * (n + 1);

    // Seed order: RPO forward, reverse RPO backward, then any node
    // the entry does not reach, in index order.
    std::vector<std::uint32_t> order;
    order.reserve(n);
    if (dir == DataflowDirection::Forward)
        order = cfg.rpo;
    else
        order.assign(cfg.rpo.rbegin(), cfg.rpo.rend());
    {
        std::vector<std::uint8_t> seeded(n, 0);
        for (const std::uint32_t u : order)
            seeded[u] = 1;
        for (std::uint32_t u = 0; u < n; ++u)
            if (!seeded[u])
                order.push_back(u);
    }

    std::deque<std::uint32_t> work(order.begin(), order.end());
    std::vector<std::uint8_t> inWork(n, 1);
    while (!work.empty()) {
        if (res.transfersRun >= maxTransfers) {
            res.converged = false;
            break;
        }
        const std::uint32_t u = work.front();
        work.pop_front();
        inWork[u] = 0;

        Value in = lattice.bottom();
        const std::vector<std::uint32_t> &sources =
            dir == DataflowDirection::Forward ? cfg.preds[u]
                                              : graph.succs(u);
        for (const std::uint32_t v : sources)
            lattice.meetInto(in, res.out[v]);

        Value next = transfer(u, std::move(in));
        ++res.transfersRun;
        if (lattice.equal(next, res.out[u]))
            continue;
        res.out[u] = std::move(next);
        const std::vector<std::uint32_t> &dependents =
            dir == DataflowDirection::Forward ? graph.succs(u)
                                              : cfg.preds[u];
        for (const std::uint32_t v : dependents)
            if (!inWork[v]) {
                inWork[v] = 1;
                work.push_back(v);
            }
    }
    return res;
}

/**
 * Powerset lattice over [0, width) bit positions, packed into 64-bit
 * words; bottom is the empty set and meet is set union.
 */
class BitsetLattice
{
  public:
    using Value = std::vector<std::uint64_t>;

    explicit BitsetLattice(std::uint32_t width)
        : words_((width + 63u) / 64u)
    {
    }

    Value bottom() const { return Value(words_, 0); }

    void meetInto(Value &into, const Value &from) const
    {
        for (std::size_t w = 0; w < into.size(); ++w)
            into[w] |= from[w];
    }

    bool equal(const Value &a, const Value &b) const { return a == b; }

    static void setBit(Value &v, std::uint32_t bit)
    {
        v[bit / 64u] |= 1ull << (bit % 64u);
    }

    static bool testBit(const Value &v, std::uint32_t bit)
    {
        return (v[bit / 64u] >> (bit % 64u)) & 1u;
    }

    static std::uint32_t countBits(const Value &v);

  private:
    std::size_t words_;
};

/** Two-point boolean lattice; bottom is false, meet is logical or. */
struct BoolOrLattice
{
    using Value = std::uint8_t;
    Value bottom() const { return 0; }
    void meetInto(Value &into, const Value &from) const
    {
        into = static_cast<Value>(into | from);
    }
    bool equal(Value a, Value b) const { return a == b; }
};

/**
 * Forward multi-source reachability: out[n] is the bitset of indices
 * into `sources` whose node reaches n (every source reaches itself).
 */
DataflowResult<BitsetLattice::Value>
reachingSources(const DiGraph &graph, const CfgFacts &cfg,
                const std::vector<std::uint32_t> &sources);

/**
 * Backward target reachability: out[n] is 1 iff n can reach some
 * node with `targetMask[node] != 0` (a target reaches itself).
 * @pre targetMask.size() == graph.size().
 */
DataflowResult<std::uint8_t>
reachesAnyOf(const DiGraph &graph, const CfgFacts &cfg,
             const std::vector<std::uint8_t> &targetMask);

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_DATAFLOW_HPP
