/**
 * @file
 * The AnalysisManager: cached static facts per guest Program and per
 * cached Region.
 *
 * `ProgramFacts` adapts a `Program` onto the node-index `DiGraph`:
 * one node per basic block, one edge per *possible* dynamic control
 * transfer — fall-through adjacency, static taken targets, declared
 * indirect targets, and the conservative return edge to every call
 * fall-through (the same edge relation as the testing layer's
 * independent `CfgOracle`, recomputed here from first principles so
 * the analysis layer does not depend on the testing layer). On top
 * of the graph sit the shared dataflow facts (`CfgFacts`): dominator
 * tree, reachability, RPO, SCCs, natural loops, predecessor lists.
 *
 * `MemberFacts` is the induced possible-edge subgraph over a region
 * member list — what the region passes run on.
 *
 * Facts are computed once per Program (keyed by object identity) and
 * once per cached Region, then reused by every verifier pass.
 */

#ifndef RSEL_ANALYSIS_ANALYSIS_MANAGER_HPP
#define RSEL_ANALYSIS_ANALYSIS_MANAGER_HPP

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/cfg_facts.hpp"
#include "program/program.hpp"
#include "runtime/region.hpp"

namespace rsel {
namespace analysis {

/**
 * Cheap shape fingerprint of a Program. Programs are immutable, but
 * a Program *variable* can be reassigned in place (same object
 * address, new content) — the cache must not serve the old facts
 * then. @see AnalysisManager::facts.
 */
std::uint64_t programFingerprint(const Program &prog);

/** Static facts about one Program, computed once. */
struct ProgramFacts
{
    const Program *prog = nullptr;
    /** programFingerprint() of prog at computation time. */
    std::uint64_t fingerprint = 0;
    /** Possible-dynamic-CFG: node i == BlockId i. */
    DiGraph graph{0};
    /** Dataflow facts rooted at the program entry. */
    CfgFacts cfg;
    /** Fall-through addresses of call blocks (return landing pads). */
    std::unordered_set<Addr> returnTargets;

    /** True if control can transfer from `from` to `to` dynamically. */
    bool possibleEdge(const BasicBlock &from, const BasicBlock &to) const
    {
        return graph.hasEdge(from.id(), to.id());
    }
};

/** Build the facts for one program (uncached form). */
ProgramFacts buildProgramFacts(const Program &prog);

/**
 * Induced possible-edge subgraph over a region member list. Node i
 * is members[i]; the entry is node 0.
 */
struct MemberFacts
{
    std::vector<const BasicBlock *> members;
    DiGraph graph{0};
    /** Dataflow facts rooted at the region entry (node 0). */
    CfgFacts cfg;
    /** True if the induced subgraph contains any cycle. */
    bool hasCycle = false;

    /** Local node index of a member block id; invalidNode if absent. */
    std::uint32_t localIndex(BlockId id) const;

  private:
    friend MemberFacts buildMemberFacts(
        const ProgramFacts &pf,
        const std::vector<const BasicBlock *> &members);
    std::unordered_map<BlockId, std::uint32_t> index_;
};

/** Build the induced-subgraph facts for one member list. */
MemberFacts buildMemberFacts(
    const ProgramFacts &pf,
    const std::vector<const BasicBlock *> &members);

/** Interprocedural facts (call graph + summaries); see
 *  inter_facts.hpp. Declared here so the manager can cache them
 *  without the base header depending on the call-graph layer. */
struct InterFacts;

/** Cache traffic counters of one AnalysisManager. */
struct AnalysisCacheStats
{
    std::uint64_t programHits = 0;
    std::uint64_t programMisses = 0;
    std::uint64_t regionHits = 0;
    std::uint64_t regionMisses = 0;
    std::uint64_t interHits = 0;
    std::uint64_t interMisses = 0;
    /** Cached facts dropped because the Program's shape changed
     *  under its address (stale facts are never served). */
    std::uint64_t staleInvalidations = 0;
};

/**
 * Owns and caches facts. Programs are keyed by object identity (the
 * caller guarantees the Program outlives the manager or calls
 * invalidate()); cached Regions likewise. A fingerprint check on
 * every facts() lookup guards the identity assumption: if the
 * Program at a cached address no longer matches the shape its facts
 * were computed from (the variable was reassigned), the stale entry
 * is dropped and recomputed, never served.
 */
class AnalysisManager
{
  public:
    AnalysisManager();
    ~AnalysisManager();
    AnalysisManager(const AnalysisManager &) = delete;
    AnalysisManager &operator=(const AnalysisManager &) = delete;

    /** Facts for `prog`, computed on first use. */
    const ProgramFacts &facts(const Program &prog);

    /** Interprocedural facts for `prog`, computed on first use.
     *  Rides the same staleness guard as facts(). */
    const InterFacts &interFacts(const Program &prog);

    /** Induced facts for a cached region, computed on first use. */
    const MemberFacts &regionFacts(const Program &prog,
                                   const Region &region);

    /** Drop cached facts for `prog` (and its regions). */
    void invalidate(const Program &prog);

    /** Hit/miss/invalidation counters. */
    const AnalysisCacheStats &cacheStats() const { return stats_; }

  private:
    std::unordered_map<const Program *, std::unique_ptr<ProgramFacts>>
        programs_;
    std::unordered_map<const Program *, std::unique_ptr<InterFacts>>
        inter_;
    std::unordered_map<const Region *, std::unique_ptr<MemberFacts>>
        regions_;
    AnalysisCacheStats stats_;
};

} // namespace analysis
} // namespace rsel

#endif // RSEL_ANALYSIS_ANALYSIS_MANAGER_HPP
