#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <tuple>

namespace rsel {
namespace analysis {

const char *
severityName(Severity sev)
{
    switch (sev) {
    case Severity::Error:
        return "error";
    case Severity::Warning:
        return "warning";
    case Severity::Note:
        return "note";
    }
    return "error";
}

std::string
Diagnostic::toString() const
{
    return "pass " + pass + ": " + object + ": " + message;
}

void
DiagnosticEngine::report(Severity sev, const std::string &pass,
                         const std::string &object,
                         const std::string &message)
{
    Diagnostic d;
    d.severity = sev;
    d.pass = pass;
    d.object = object;
    d.message = message;
    diagnostics_.push_back(std::move(d));
    if (sev == Severity::Error)
        ++errors_;
    else if (sev == Severity::Warning)
        ++warnings_;
    else
        ++notes_;
}

void
DiagnosticEngine::error(const std::string &pass,
                        const std::string &object,
                        const std::string &message)
{
    report(Severity::Error, pass, object, message);
}

void
DiagnosticEngine::warning(const std::string &pass,
                          const std::string &object,
                          const std::string &message)
{
    report(Severity::Warning, pass, object, message);
}

void
DiagnosticEngine::note(const std::string &pass,
                       const std::string &object,
                       const std::string &message)
{
    report(Severity::Note, pass, object, message);
}

std::vector<Diagnostic>
DiagnosticEngine::stableUnique() const
{
    std::vector<Diagnostic> sorted = diagnostics_;
    const auto key = [](const Diagnostic &d) {
        return std::tie(d.pass, d.object, d.severity, d.message);
    };
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&key](const Diagnostic &a, const Diagnostic &b) {
                         return key(a) < key(b);
                     });
    sorted.erase(std::unique(sorted.begin(), sorted.end(),
                             [&key](const Diagnostic &a,
                                    const Diagnostic &b) {
                                 return key(a) == key(b);
                             }),
                 sorted.end());
    return sorted;
}

std::string
DiagnosticEngine::firstError() const
{
    return firstErrorAfter(0);
}

std::string
DiagnosticEngine::firstErrorAfter(std::size_t start) const
{
    for (std::size_t i = start; i < diagnostics_.size(); ++i)
        if (diagnostics_[i].severity == Severity::Error)
            return diagnostics_[i].toString();
    return "";
}

std::string
DiagnosticEngine::summary() const
{
    std::string s = std::to_string(errors_) +
                    (errors_ == 1 ? " error, " : " errors, ") +
                    std::to_string(warnings_) +
                    (warnings_ == 1 ? " warning" : " warnings");
    if (notes_ != 0)
        s += ", " + std::to_string(notes_) +
             (notes_ == 1 ? " note" : " notes");
    return s;
}

Table
DiagnosticEngine::toTable(const std::string &title) const
{
    Table table(title, {"severity", "pass", "object", "message"});
    const std::vector<Diagnostic> rows = stableUnique();
    for (const Diagnostic &d : rows)
        table.addRow({severityName(d.severity), d.pass, d.object,
                      d.message});
    std::string tail = summary();
    const std::size_t suppressed = diagnostics_.size() - rows.size();
    if (suppressed != 0)
        tail += " (" + std::to_string(suppressed) +
                " duplicates suppressed)";
    table.addSummaryRow({tail, "", "", ""});
    return table;
}

} // namespace analysis
} // namespace rsel
