#include "analysis/diagnostics.hpp"

namespace rsel {
namespace analysis {

const char *
severityName(Severity sev)
{
    switch (sev) {
    case Severity::Error:
        return "error";
    case Severity::Warning:
        return "warning";
    }
    return "error";
}

std::string
Diagnostic::toString() const
{
    return "pass " + pass + ": " + object + ": " + message;
}

void
DiagnosticEngine::report(Severity sev, const std::string &pass,
                         const std::string &object,
                         const std::string &message)
{
    Diagnostic d;
    d.severity = sev;
    d.pass = pass;
    d.object = object;
    d.message = message;
    diagnostics_.push_back(std::move(d));
    if (sev == Severity::Error)
        ++errors_;
    else
        ++warnings_;
}

void
DiagnosticEngine::error(const std::string &pass,
                        const std::string &object,
                        const std::string &message)
{
    report(Severity::Error, pass, object, message);
}

void
DiagnosticEngine::warning(const std::string &pass,
                          const std::string &object,
                          const std::string &message)
{
    report(Severity::Warning, pass, object, message);
}

std::string
DiagnosticEngine::firstError() const
{
    return firstErrorAfter(0);
}

std::string
DiagnosticEngine::firstErrorAfter(std::size_t start) const
{
    for (std::size_t i = start; i < diagnostics_.size(); ++i)
        if (diagnostics_[i].severity == Severity::Error)
            return diagnostics_[i].toString();
    return "";
}

std::string
DiagnosticEngine::summary() const
{
    return std::to_string(errors_) +
           (errors_ == 1 ? " error, " : " errors, ") +
           std::to_string(warnings_) +
           (warnings_ == 1 ? " warning" : " warnings");
}

Table
DiagnosticEngine::toTable(const std::string &title) const
{
    Table table(title, {"severity", "pass", "object", "message"});
    for (const Diagnostic &d : diagnostics_)
        table.addRow({severityName(d.severity), d.pass, d.object,
                      d.message});
    table.addSummaryRow({summary(), "", "", ""});
    return table;
}

} // namespace analysis
} // namespace rsel
