#include "isa/basic_block.hpp"

#include "support/error.hpp"

namespace rsel {

bool
isIndirect(BranchKind kind)
{
    return kind == BranchKind::IndirectJump ||
           kind == BranchKind::IndirectCall ||
           kind == BranchKind::Return;
}

bool
canFallThrough(BranchKind kind)
{
    return kind == BranchKind::None || kind == BranchKind::CondDirect;
}

bool
isUnconditional(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Jump:
      case BranchKind::IndirectJump:
      case BranchKind::Call:
      case BranchKind::IndirectCall:
      case BranchKind::Return:
        return true;
      default:
        return false;
    }
}

std::string
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::None:         return "fall-through";
      case BranchKind::CondDirect:   return "cond";
      case BranchKind::Jump:         return "jump";
      case BranchKind::IndirectJump: return "ijump";
      case BranchKind::Call:         return "call";
      case BranchKind::IndirectCall: return "icall";
      case BranchKind::Return:       return "return";
      case BranchKind::Halt:         return "halt";
    }
    return "unknown";
}

BasicBlock::BasicBlock(BlockId id, FuncId func,
                       std::vector<Instruction> instructions,
                       BranchKind terminator, Addr takenTarget)
    : id_(id), func_(func), instructions_(std::move(instructions)),
      terminator_(terminator), takenTarget_(takenTarget), sizeBytes_(0)
{
    RSEL_ASSERT(!instructions_.empty(), "a block needs >= 1 instruction");
    Addr expected = instructions_.front().addr;
    for (const Instruction &inst : instructions_) {
        RSEL_ASSERT(inst.addr == expected,
                    "block instructions must be contiguous");
        expected += inst.sizeBytes;
        sizeBytes_ += inst.sizeBytes;
    }

    const bool needsStaticTarget = terminator == BranchKind::CondDirect ||
                                   terminator == BranchKind::Jump ||
                                   terminator == BranchKind::Call;
    if (needsStaticTarget) {
        RSEL_ASSERT(takenTarget_ != invalidAddr,
                    "direct branch requires a static target");
    } else {
        RSEL_ASSERT(takenTarget_ == invalidAddr,
                    "non-direct terminator cannot carry a static target");
    }
}

Addr
BasicBlock::fallThroughAddr() const
{
    return instructions_.back().addr + instructions_.back().sizeBytes;
}

} // namespace rsel
