/**
 * @file
 * Fundamental types of the synthetic guest ISA.
 *
 * The reproduction substitutes Pin-observed x86 execution with a
 * synthetic ISA (see DESIGN.md section 2). Region selection only
 * depends on addresses, branch kinds, and instruction sizes, so the
 * ISA models exactly those.
 */

#ifndef RSEL_ISA_TYPES_HPP
#define RSEL_ISA_TYPES_HPP

#include <cstdint>
#include <limits>
#include <string>

namespace rsel {

/** A guest virtual address. */
using Addr = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Index of a basic block within its Program. */
using BlockId = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = std::numeric_limits<BlockId>::max();

/** Index of a function within its Program. */
using FuncId = std::uint32_t;

/** Sentinel for "no function". */
constexpr FuncId invalidFunc = std::numeric_limits<FuncId>::max();

/**
 * Kind of the control transfer that terminates a basic block.
 *
 * `None` means the block simply falls through to the next block in
 * the layout. `Halt` terminates the guest program.
 */
enum class BranchKind : std::uint8_t {
    None,         ///< Fall through; no branch instruction.
    CondDirect,   ///< Conditional branch with a static taken target.
    Jump,         ///< Unconditional direct jump.
    IndirectJump, ///< Unconditional jump through a register/table.
    Call,         ///< Direct call; returns to the fall-through block.
    IndirectCall, ///< Indirect call; returns to the fall-through block.
    Return,       ///< Return to the caller's fall-through block.
    Halt,         ///< End of guest program.
};

/** True if the kind transfers control through a dynamic target. */
bool isIndirect(BranchKind kind);

/** True if the kind can fall through to the next block in layout. */
bool canFallThrough(BranchKind kind);

/** True if the kind always transfers control away (no fall-through). */
bool isUnconditional(BranchKind kind);

/** Human-readable name of a branch kind. */
std::string branchKindName(BranchKind kind);

} // namespace rsel

#endif // RSEL_ISA_TYPES_HPP
