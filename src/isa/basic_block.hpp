/**
 * @file
 * Instruction and basic-block representation of the synthetic ISA.
 */

#ifndef RSEL_ISA_BASIC_BLOCK_HPP
#define RSEL_ISA_BASIC_BLOCK_HPP

#include <cstdint>
#include <vector>

#include "isa/types.hpp"

namespace rsel {

/**
 * One guest instruction. Only the properties region selection can
 * observe are modelled: its address and its encoded size in bytes
 * (variable, like x86, so the paper's byte-based code-cache size
 * model is meaningful).
 */
struct Instruction
{
    /** Guest address of the instruction. */
    Addr addr = invalidAddr;
    /** Encoded size in bytes (2-6 in generated programs). */
    std::uint8_t sizeBytes = 4;
};

/**
 * A basic block of the guest program: a run of straight-line
 * instructions ended by at most one control transfer.
 *
 * Blocks are identified by their start address; the terminating
 * branch instruction is the last instruction of the block. The
 * fall-through address is the address immediately after the block.
 */
class BasicBlock
{
  public:
    /**
     * @param id           index of the block in its Program.
     * @param func         owning function.
     * @param instructions non-empty, contiguous instruction list.
     * @param terminator   kind of the final control transfer.
     * @param takenTarget  static taken-target address, or invalidAddr
     *                     for indirect/return/none terminators.
     */
    BasicBlock(BlockId id, FuncId func,
               std::vector<Instruction> instructions,
               BranchKind terminator, Addr takenTarget);

    /** Block index within its Program. */
    BlockId id() const { return id_; }

    /** Owning function. */
    FuncId func() const { return func_; }

    /** Address of the first instruction. */
    Addr startAddr() const { return instructions_.front().addr; }

    /** Address of the last (terminating) instruction. */
    Addr lastInstAddr() const { return instructions_.back().addr; }

    /** Address immediately after the block (fall-through target). */
    Addr fallThroughAddr() const;

    /** The block's instructions, in address order. */
    const std::vector<Instruction> &instructions() const
    {
        return instructions_;
    }

    /** Number of instructions in the block. */
    std::size_t instCount() const { return instructions_.size(); }

    /** Total encoded size of the block in bytes. */
    std::uint64_t sizeBytes() const { return sizeBytes_; }

    /** Kind of the terminating control transfer. */
    BranchKind terminator() const { return terminator_; }

    /** Static taken-target address (invalidAddr if none). */
    Addr takenTarget() const { return takenTarget_; }

    /**
     * True if the terminating branch is a backward branch with
     * respect to the given target: target address at or below the
     * branch instruction address. This is the paper's definition
     * ("an instruction that transfers control to a lower address").
     */
    bool isBackwardTransferTo(Addr target) const
    {
        return target <= lastInstAddr();
    }

  private:
    BlockId id_;
    FuncId func_;
    std::vector<Instruction> instructions_;
    BranchKind terminator_;
    Addr takenTarget_;
    std::uint64_t sizeBytes_;
};

} // namespace rsel

#endif // RSEL_ISA_BASIC_BLOCK_HPP
