#include "resilience/fault_plan.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"
#include "support/random.hpp"

namespace rsel {
namespace resilience {

namespace {

/** Field table: one row per knob, so toString/parse/== cannot drift. */
struct FieldDef
{
    const char *key;
    std::uint64_t FaultPlan::*wide;
    std::uint32_t FaultPlan::*narrow;
};

const FieldDef fieldTable[] = {
    {"tfail", nullptr, &FaultPlan::pTranslationFail},
    {"inval", nullptr, &FaultPlan::invalidateRate},
    {"flush", nullptr, &FaultPlan::flushRate},
    {"reset", nullptr, &FaultPlan::resetRate},
    {"retry", nullptr, &FaultPlan::retryBudget},
    {"backoff", &FaultPlan::backoffEvents, nullptr},
    {"seed", &FaultPlan::seed, nullptr},
};

std::uint64_t
getField(const FaultPlan &p, const FieldDef &f)
{
    return f.wide ? p.*(f.wide) : p.*(f.narrow);
}

void
setField(FaultPlan &p, const FieldDef &f, std::uint64_t v)
{
    if (f.wide)
        p.*(f.wide) = v;
    else
        p.*(f.narrow) = static_cast<std::uint32_t>(v);
}

} // namespace

void
FaultPlan::clamp()
{
    pTranslationFail = std::min<std::uint32_t>(pTranslationFail, 100);
    invalidateRate = std::min<std::uint32_t>(invalidateRate, 100'000);
    flushRate = std::min<std::uint32_t>(flushRate, 100'000);
    resetRate = std::min<std::uint32_t>(resetRate, 100'000);
    retryBudget = std::min<std::uint32_t>(retryBudget, 16);
    backoffEvents = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(backoffEvents, 1'000'000));
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    os << "f1";
    for (const FieldDef &f : fieldTable)
        os << "," << f.key << "=" << getField(*this, f);
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    std::istringstream is(text);
    std::string part;
    if (!std::getline(is, part, ',') || part != "f1")
        fatal("bad fault plan: expected leading \"f1\", got \"" +
              text + "\"");

    FaultPlan plan;
    while (std::getline(is, part, ',')) {
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            fatal("bad fault-plan field \"" + part +
                  "\" (expected key=value)");
        const std::string key = part.substr(0, eq);
        const std::string val = part.substr(eq + 1);
        const FieldDef *def = nullptr;
        for (const FieldDef &f : fieldTable)
            if (key == f.key)
                def = &f;
        if (!def)
            fatal("unknown fault-plan field \"" + key + "\"");
        std::uint64_t v = 0;
        try {
            std::size_t used = 0;
            v = std::stoull(val, &used);
            if (used != val.size())
                throw std::invalid_argument(val);
        } catch (const std::exception &) {
            fatal("bad value \"" + val + "\" for fault-plan field \"" +
                  key + "\"");
        }
        setField(plan, *def, v);
    }
    plan.clamp();
    return plan;
}

FaultPlan
FaultPlan::fromSeed(std::uint64_t seed)
{
    Rng rng(seed ^ 0xb5297a4d9c2f8e61ull);
    FaultPlan p;
    // Always armed: every seed injects at least translation failures.
    p.pTranslationFail = static_cast<std::uint32_t>(rng.nextRange(1, 50));
    p.invalidateRate =
        rng.nextBool(0.7)
            ? static_cast<std::uint32_t>(rng.nextRange(1, 400))
            : 0;
    p.flushRate =
        rng.nextBool(0.4)
            ? static_cast<std::uint32_t>(rng.nextRange(1, 120))
            : 0;
    p.resetRate =
        rng.nextBool(0.3)
            ? static_cast<std::uint32_t>(rng.nextRange(1, 80))
            : 0;
    p.retryBudget = static_cast<std::uint32_t>(rng.nextRange(0, 5));
    p.backoffEvents = rng.nextRange(16, 512);
    p.seed = seed * 0xd1342543de82ef95ull + 1;
    p.clamp();
    return p;
}

bool
FaultPlan::operator==(const FaultPlan &other) const
{
    for (const FieldDef &f : fieldTable)
        if (getField(*this, f) != getField(other, f))
            return false;
    return true;
}

} // namespace resilience
} // namespace rsel
