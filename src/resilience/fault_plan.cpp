#include "resilience/fault_plan.hpp"

#include <algorithm>

#include "resilience/plan_codec.hpp"
#include "support/random.hpp"

namespace rsel {
namespace resilience {

namespace {

/** Field table: one row per knob, so toString/parse/== cannot drift
 *  (shared codec machinery lives in plan_codec.hpp). */
const PlanField<FaultPlan> fieldTable[] = {
    {"tfail", nullptr, &FaultPlan::pTranslationFail},
    {"inval", nullptr, &FaultPlan::invalidateRate},
    {"flush", nullptr, &FaultPlan::flushRate},
    {"reset", nullptr, &FaultPlan::resetRate},
    {"retry", nullptr, &FaultPlan::retryBudget},
    {"backoff", &FaultPlan::backoffEvents, nullptr},
    {"seed", &FaultPlan::seed, nullptr},
};

} // namespace

void
FaultPlan::clamp()
{
    pTranslationFail = std::min<std::uint32_t>(pTranslationFail, 100);
    invalidateRate = std::min<std::uint32_t>(invalidateRate, 100'000);
    flushRate = std::min<std::uint32_t>(flushRate, 100'000);
    resetRate = std::min<std::uint32_t>(resetRate, 100'000);
    retryBudget = std::min<std::uint32_t>(retryBudget, 16);
    backoffEvents = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(backoffEvents, 1'000'000));
}

std::string
FaultPlan::toString() const
{
    return planToString(*this, "f1", fieldTable);
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan = planParse(text, "f1", "fault", fieldTable);
    plan.clamp();
    return plan;
}

FaultPlan
FaultPlan::fromSeed(std::uint64_t seed)
{
    Rng rng(seed ^ 0xb5297a4d9c2f8e61ull);
    FaultPlan p;
    // Always armed: every seed injects at least translation failures.
    p.pTranslationFail = static_cast<std::uint32_t>(rng.nextRange(1, 50));
    p.invalidateRate =
        rng.nextBool(0.7)
            ? static_cast<std::uint32_t>(rng.nextRange(1, 400))
            : 0;
    p.flushRate =
        rng.nextBool(0.4)
            ? static_cast<std::uint32_t>(rng.nextRange(1, 120))
            : 0;
    p.resetRate =
        rng.nextBool(0.3)
            ? static_cast<std::uint32_t>(rng.nextRange(1, 80))
            : 0;
    p.retryBudget = static_cast<std::uint32_t>(rng.nextRange(0, 5));
    p.backoffEvents = rng.nextRange(16, 512);
    p.seed = seed * 0xd1342543de82ef95ull + 1;
    p.clamp();
    return p;
}

bool
FaultPlan::operator==(const FaultPlan &other) const
{
    return planEquals(*this, other, fieldTable);
}

} // namespace resilience
} // namespace rsel
