#include "resilience/fault_injector.hpp"

#include "support/error.hpp"

namespace rsel {
namespace resilience {

FaultInjector::FaultInjector(const FaultPlan &plan,
                             std::uint64_t seedOverride)
    : plan_(plan),
      eventRng_((seedOverride != 0 ? seedOverride : plan.seed) ^
                0x8f1bbcdc5a827999ull),
      submitRng_((seedOverride != 0 ? seedOverride : plan.seed) ^
                 0x6ed9eba1ca62c1d6ull)
{
    plan_.clamp();
}

FaultInjector::Tick
FaultInjector::onEvent()
{
    // One draw per fault kind, every call, so the event stream stays
    // aligned across selectors regardless of which faults fire.
    Tick tick;
    tick.invalidate = eventRng_.nextBelow(100'000) <
                      plan_.invalidateRate;
    tick.flush = eventRng_.nextBelow(100'000) < plan_.flushRate;
    tick.reset = eventRng_.nextBelow(100'000) < plan_.resetRate;
    return tick;
}

bool
FaultInjector::translationFails()
{
    return submitRng_.nextBelow(100) < plan_.pTranslationFail;
}

std::uint64_t
FaultInjector::pickVictim(std::uint64_t count)
{
    RSEL_ASSERT(count > 0, "picking a victim from nothing");
    return eventRng_.nextBelow(count);
}

} // namespace resilience
} // namespace rsel
