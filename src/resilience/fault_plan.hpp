/**
 * @file
 * The fault plan: a compact, seeded description of every fault a run
 * will face.
 *
 * A FaultPlan is the entire input of the fault injector, exactly as
 * a GenSpec is the entire input of the program generator: injection
 * is a pure function of the plan and the consumed event/submit
 * streams, so a plan string is a complete, portable reproducer. The
 * one-line codec ("f1,tfail=10,inval=50,...") round-trips through
 * toString()/parse() and rides on rselect-sim --fault-spec and
 * rselect-fuzz reproducer lines.
 */

#ifndef RSEL_RESILIENCE_FAULT_PLAN_HPP
#define RSEL_RESILIENCE_FAULT_PLAN_HPP

#include <cstdint>
#include <string>

namespace rsel {
namespace resilience {

/**
 * Knobs of the deterministic fault injector. Event-driven fault
 * rates are expressed per 100k dynamic block events so small rates
 * round-trip exactly through the text form; the translation-failure
 * probability is in percent per submit.
 */
struct FaultPlan
{
    /** % chance a region submit fails to materialize. */
    std::uint32_t pTranslationFail = 0;
    /** Block-invalidation events per 100k dynamic block events. */
    std::uint32_t invalidateRate = 0;
    /** Flush storms per 100k dynamic block events. */
    std::uint32_t flushRate = 0;
    /** Selector-state resets per 100k dynamic block events. */
    std::uint32_t resetRate = 0;
    /** Failed submits tolerated per entrance before blacklisting. */
    std::uint32_t retryBudget = 3;
    /**
     * Base backoff window in interpreted events after the first
     * failure at an entrance; doubles per further failure.
     */
    std::uint64_t backoffEvents = 64;
    /** Injector seed (independent of program/executor seeds). */
    std::uint64_t seed = 1;

    /** True if any fault can ever fire. Disarmed plans are free. */
    bool
    armed() const
    {
        return pTranslationFail != 0 || invalidateRate != 0 ||
               flushRate != 0 || resetRate != 0;
    }

    /** Clamp every knob into its legal range. */
    void clamp();

    /** Compact one-line text form ("f1,tfail=10,inval=50,..."). */
    std::string toString() const;

    /**
     * Parse the text form produced by toString().
     * @throws FatalError on malformed input.
     */
    static FaultPlan parse(const std::string &text);

    /**
     * Derive a randomized, always-armed plan from a fuzz seed (the
     * seed-to-fault-space mapping of the fault-fuzzing mode).
     */
    static FaultPlan fromSeed(std::uint64_t seed);

    bool operator==(const FaultPlan &other) const;
    bool operator!=(const FaultPlan &other) const
    {
        return !(*this == other);
    }
};

} // namespace resilience
} // namespace rsel

#endif // RSEL_RESILIENCE_FAULT_PLAN_HPP
