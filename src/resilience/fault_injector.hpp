/**
 * @file
 * The deterministic fault injector.
 *
 * Two independent xoshiro streams keep injection reproducible at
 * every pipeline point:
 *
 *  - The *event* stream is consumed once per dynamic block event
 *    (onEvent), so invalidations, flush storms and selector resets
 *    fire at identical event indices for every selector running the
 *    same program — the cross-selector differential oracle depends
 *    on this alignment.
 *  - The *submit* stream is consumed once per region submit
 *    (translationFails), which interleaves with the per-selector
 *    submit sequence; each selector's run is individually
 *    deterministic, and record→replay sees the same sequence.
 *
 * The injector decides *that* and *where* a fault fires; the
 * DynOptSystem owns the recovery policy (retry, backoff, blacklist).
 *
 * Armed-ness is immutable: an injector exists only for armed plans,
 * and arming happens strictly before the first event
 * (DynOptSystem::armFaults asserts this). Batch consumers exploit
 * that contract by hoisting the disarmed check to once per
 * EventBatch — a disarmed system's event loop carries no injector
 * code at all, while an armed one still calls onEvent() exactly
 * once per dynamic block event, preserving fault indices.
 */

#ifndef RSEL_RESILIENCE_FAULT_INJECTOR_HPP
#define RSEL_RESILIENCE_FAULT_INJECTOR_HPP

#include <cstdint>

#include "resilience/fault_plan.hpp"
#include "support/random.hpp"

namespace rsel {
namespace resilience {

/** Seeded injector executing one FaultPlan. */
class FaultInjector
{
  public:
    /**
     * @param plan the armed plan to execute (copied).
     * @param seedOverride non-zero replaces the plan's seed, so one
     *        plan can be replayed under many injection seeds.
     */
    explicit FaultInjector(const FaultPlan &plan,
                           std::uint64_t seedOverride = 0);

    /** Event-driven faults due at one dynamic block event. */
    struct Tick
    {
        bool invalidate = false;
        bool flush = false;
        bool reset = false;
    };

    /**
     * Advance the event stream by one dynamic block event and return
     * the faults due now. Consumes a fixed number of draws per call,
     * independent of the outcome.
     */
    Tick onEvent();

    /** True if the current region submit fails to materialize. */
    bool translationFails();

    /**
     * Deterministic victim index in [0, count) for an invalidation,
     * drawn from the event stream. @pre count > 0.
     */
    std::uint64_t pickVictim(std::uint64_t count);

    /** The plan being executed. */
    const FaultPlan &plan() const { return plan_; }

  private:
    FaultPlan plan_;
    /** Per-event fault decisions (selector-independent alignment). */
    Rng eventRng_;
    /** Per-submit translation-failure decisions. */
    Rng submitRng_;
};

} // namespace resilience
} // namespace rsel

#endif // RSEL_RESILIENCE_FAULT_INJECTOR_HPP
