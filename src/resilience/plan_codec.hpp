/**
 * @file
 * Shared one-line plan codec.
 *
 * Both fault plans ("f1,tfail=10,...") and service chaos plans
 * ("c1,crash=250,...") are flat bags of integer knobs with the same
 * portability contract: the text form is a complete reproducer, and
 * toString/parse/operator== must agree field-for-field forever. The
 * codec is therefore driven by a single per-plan field table — one
 * row per knob — so the three operations cannot drift apart, and a
 * new plan type only declares its table.
 *
 * A field table is an array of PlanField<Plan>: each row names the
 * key and points at either a 64-bit or a 32-bit member (exactly one
 * of the two). Values are strict unsigned decimals; unknown keys and
 * trailing garbage are fatal, mirroring the repo's strict-CLI-parse
 * rule.
 */

#ifndef RSEL_RESILIENCE_PLAN_CODEC_HPP
#define RSEL_RESILIENCE_PLAN_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "support/error.hpp"

namespace rsel {
namespace resilience {

/** One knob of a plan: a key plus a wide or narrow member pointer. */
template <typename Plan> struct PlanField
{
    const char *key;
    std::uint64_t Plan::*wide;
    std::uint32_t Plan::*narrow;
};

template <typename Plan>
std::uint64_t
planGetField(const Plan &p, const PlanField<Plan> &f)
{
    return f.wide ? p.*(f.wide) : p.*(f.narrow);
}

template <typename Plan>
void
planSetField(Plan &p, const PlanField<Plan> &f, std::uint64_t v)
{
    if (f.wide)
        p.*(f.wide) = v;
    else
        p.*(f.narrow) = static_cast<std::uint32_t>(v);
}

/** "tag,key=val,key=val,..." over every row of the table. */
template <typename Plan, std::size_t N>
std::string
planToString(const Plan &p, const char *tag,
             const PlanField<Plan> (&table)[N])
{
    std::ostringstream os;
    os << tag;
    for (const PlanField<Plan> &f : table)
        os << "," << f.key << "=" << planGetField(p, f);
    return os.str();
}

/**
 * Parse the text form produced by planToString. `kind` names the
 * plan family in diagnostics ("fault", "chaos").
 * @throws FatalError on malformed input.
 */
template <typename Plan, std::size_t N>
Plan
planParse(const std::string &text, const char *tag, const char *kind,
          const PlanField<Plan> (&table)[N])
{
    std::istringstream is(text);
    std::string part;
    if (!std::getline(is, part, ',') || part != tag)
        fatal(std::string("bad ") + kind + " plan: expected leading \"" +
              tag + "\", got \"" + text + "\"");

    Plan plan;
    while (std::getline(is, part, ',')) {
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            fatal(std::string("bad ") + kind + "-plan field \"" + part +
                  "\" (expected key=value)");
        const std::string key = part.substr(0, eq);
        const std::string val = part.substr(eq + 1);
        const PlanField<Plan> *def = nullptr;
        for (const PlanField<Plan> &f : table)
            if (key == f.key)
                def = &f;
        if (!def)
            fatal(std::string("unknown ") + kind + "-plan field \"" +
                  key + "\"");
        std::uint64_t v = 0;
        try {
            std::size_t used = 0;
            v = std::stoull(val, &used);
            if (used != val.size())
                throw std::invalid_argument(val);
        } catch (const std::exception &) {
            fatal(std::string("bad value \"") + val + "\" for " + kind +
                  "-plan field \"" + key + "\"");
        }
        planSetField(plan, *def, v);
    }
    return plan;
}

/** Field-for-field equality over the same table toString walks. */
template <typename Plan, std::size_t N>
bool
planEquals(const Plan &a, const Plan &b,
           const PlanField<Plan> (&table)[N])
{
    for (const PlanField<Plan> &f : table)
        if (planGetField(a, f) != planGetField(b, f))
            return false;
    return true;
}

} // namespace resilience
} // namespace rsel

#endif // RSEL_RESILIENCE_PLAN_CODEC_HPP
