/**
 * @file
 * Counters of injected faults and the system's recovery work.
 *
 * Filled by DynOptSystem when a FaultPlan is armed; all zero
 * otherwise. The testing layer's conservation oracle checks the
 * closure identity: every injected fault is exactly one translation
 * failure, block invalidation, flush storm or selector reset.
 */

#ifndef RSEL_RESILIENCE_RECOVERY_STATS_HPP
#define RSEL_RESILIENCE_RECOVERY_STATS_HPP

#include <cstdint>

namespace rsel {
namespace resilience {

/** Fault-injection and graceful-degradation counters of one run. */
struct RecoveryStats
{
    /** Total faults the injector fired (sum of the four kinds). */
    std::uint64_t faultsInjected = 0;
    /** Region submits that failed to materialize (translation). */
    std::uint64_t translationFailures = 0;
    /** Block-invalidation events (self-modifying-code model). */
    std::uint64_t blockInvalidations = 0;
    /** Live regions dropped by those invalidations. */
    std::uint64_t regionsInvalidated = 0;
    /** Capacity-pressure flush storms fired. */
    std::uint64_t flushStorms = 0;
    /** Selector profiling-state resets fired. */
    std::uint64_t selectorResets = 0;
    /** Successful re-submits after at least one failure. */
    std::uint64_t retries = 0;
    /** Submits suppressed inside an exponential-backoff window. */
    std::uint64_t backoffSuppressed = 0;
    /** Submits dropped at a blacklisted entrance. */
    std::uint64_t blacklistSuppressed = 0;
    /** Entrances degraded to pure interpretation (budget spent). */
    std::uint64_t blacklistedEntrances = 0;
    /** Re-inserts at an entry the cache had invalidated before. */
    std::uint64_t retranslations = 0;

    /** Additive fold, for suite-level SimResult merging. */
    RecoveryStats &
    mergeFrom(const RecoveryStats &other)
    {
        faultsInjected += other.faultsInjected;
        translationFailures += other.translationFailures;
        blockInvalidations += other.blockInvalidations;
        regionsInvalidated += other.regionsInvalidated;
        flushStorms += other.flushStorms;
        selectorResets += other.selectorResets;
        retries += other.retries;
        backoffSuppressed += other.backoffSuppressed;
        blacklistSuppressed += other.blacklistSuppressed;
        blacklistedEntrances += other.blacklistedEntrances;
        retranslations += other.retranslations;
        return *this;
    }
};

} // namespace resilience
} // namespace rsel

#endif // RSEL_RESILIENCE_RECOVERY_STATS_HPP
