#include "workloads/workloads.hpp"

namespace rsel {

const std::vector<WorkloadInfo> &
workloadSuite()
{
    static const std::vector<WorkloadInfo> suite = {
        {"gzip",
         "LZ77 compression: few dominant loops, biased branches, "
         "interprocedural match loop",
         &buildGzip, 1'500'000},
        {"vpr",
         "FPGA place & route: two phases, annealing swaps then maze "
         "routing",
         &buildVpr, 1'500'000},
        {"gcc",
         "optimizing compiler: many procedures, unbiased branches, "
         "widest hot-path set",
         &buildGcc, 2'000'000},
        {"mcf",
         "network simplex: giant pointer-chasing scan loops with a "
         "call on the dominant path",
         &buildMcf, 1'500'000},
        {"crafty",
         "chess search: intraprocedural bitboard cycles NET already "
         "spans",
         &buildCrafty, 1'500'000},
        {"parser",
         "link-grammar parser: short intraprocedural list scans",
         &buildParser, 1'500'000},
        {"eon",
         "C++ ray tracer: tiny shared constructors called from many "
         "hot sites (exit-domination outlier)",
         &buildEon, 1'500'000},
        {"perlbmk",
         "Perl interpreter: runloop dispatch over many rejoining "
         "opcode handlers",
         &buildPerlbmk, 1'500'000},
        {"gap",
         "group-theory interpreter: dispatch plus big-integer and "
         "permutation kernels",
         &buildGap, 1'500'000},
        {"vortex",
         "OO database: layered call chains, validation diamonds, "
         "three transaction phases",
         &buildVortex, 1'500'000},
        {"bzip2",
         "block-sorting compression: unbiased comparison exits in "
         "very hot sort cycles",
         &buildBzip2, 1'500'000},
        {"twolf",
         "annealing placement: the canonical unbiased accept/reject "
         "branch on the dominant cycle",
         &buildTwolf, 1'500'000},
    };
    return suite;
}

const WorkloadInfo *
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : workloadSuite())
        if (w.name == name)
            return &w;
    return nullptr;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    names.reserve(workloadSuite().size());
    for (const WorkloadInfo &w : workloadSuite())
        names.push_back(w.name);
    return names;
}

} // namespace rsel
