/**
 * @file
 * vpr: FPGA placement and routing. Two distinct program phases —
 * annealing placement, then maze routing — each with its own family
 * of hot loops, switched by a phase-biased dispatch branch. Cost
 * computation runs through calls on the dominant paths; the
 * accept/reject comparison is near-unbiased; routing has wavefront
 * loops with early exits.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildVpr(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "vpr", 4);

    // Shared leaves.
    const FuncId rngLeaf = makeLeaf(kit, "my_irand", 4, false);

    // --- Placement side -------------------------------------------------
    KernelSpec bboxSpec;              // per-net bounding-box update
    bboxSpec.bodyInsts = 9;           // bb-cost work inlined
    bboxSpec.tripMin = 4;
    bboxSpec.tripMax = 12;
    bboxSpec.biasedSkipProb = 0.9;
    const FuncId netCost = makeKernel(kit, "comp_delta_cost", bboxSpec);

    KernelSpec timingSpec;            // timing-driven cost terms
    timingSpec.bodyInsts = 6;
    timingSpec.tripMin = 6;
    timingSpec.tripMax = 16;
    timingSpec.biasedSkipProb = 0.92;
    const FuncId timingCost = makeKernel(kit, "comp_td_cost", timingSpec);

    const FuncId trySwap = kit.beginFunction("try_swap");
    {
        kit.call(3, rngLeaf);          // pick two blocks
        kit.callFromTwoSites(0.15, 2, 3, netCost);          // dominant-path calls
        kit.callFromTwoSites(0.15, 2, 2, timingCost);
        kit.diamond(0.45, 3, 5, 5);    // accept vs reject (unbiased)
        kit.callIf(0.96, 2, 2, cold[0]);
        kit.ret(2);
    }

    KernelSpec recomputeSpec;         // periodic cost recompute
    recomputeSpec.bodyInsts = 5;
    recomputeSpec.tripMin = 20;
    recomputeSpec.tripMax = 50;
    recomputeSpec.nestedInner = true;
    const FuncId recompute =
        makeKernel(kit, "recompute_cost", recomputeSpec);

    // --- Routing side ----------------------------------------------------
    const FuncId heapLeaf = makeLeaf(kit, "heap_push", 5, false);

    KernelSpec expandSpec;            // wavefront neighbour expansion
    expandSpec.bodyInsts = 5;
    expandSpec.tripMin = 3;
    expandSpec.tripMax = 7;
    expandSpec.biasedSkipProb = 0.6;  // visited check
    expandSpec.callee = heapLeaf;
    const FuncId expand = makeKernel(kit, "expand_neighbours", expandSpec);

    const FuncId routeNet = kit.beginFunction("route_net");
    {
        auto wave = kit.loopBegin(5);   // maze expansion
        kit.callFromTwoSites(0.15, 2, 3, expand);            // interprocedural cycle
        kit.ifThen(0.85, 2, 4);         // sink reached early?
        kit.loopEnd(wave, 3, 15, 45);
        auto traceback = kit.loopBegin(4);
        kit.loopEnd(traceback, 2, 6, 14);
        kit.ret(3);
    }

    KernelSpec ripupSpec;             // rip-up and retry bookkeeping
    ripupSpec.bodyInsts = 4;
    ripupSpec.tripMin = 8;
    ripupSpec.tripMax = 20;
    ripupSpec.biasedSkipProb = 0.9;
    ripupSpec.rareCallee = cold[1];
    const FuncId ripup = makeKernel(kit, "ripup_net", ripupSpec);

    KernelSpec congSpec;              // congestion cost update
    congSpec.bodyInsts = 4;
    congSpec.tripMin = 30;
    congSpec.tripMax = 60;
    congSpec.biasedSkipProb = 0.94;
    const FuncId congestion =
        makeKernel(kit, "update_congestion", congSpec);

    kit.beginFunction("main");
    {
        auto outer = kit.loopBegin(5);
        ProgramBuilder &b = kit.builder();
        const BlockId dispatch = kit.straight(3);

        // Placement burst.
        const BlockId placeSite = b.block(2);
        b.callTo(placeSite, trySwap);
        const BlockId placeLatch = b.block(3);
        b.loopTo(placeLatch, placeSite, 25, 60);
        const BlockId placeEnd = b.block(2);
        b.callTo(placeEnd, recompute);
        const BlockId placeExit = b.block(1);
        kit.joinNext(placeExit);

        // Routing burst.
        const BlockId routeSite = b.block(2);
        b.callTo(routeSite, routeNet);
        const BlockId routeMid = b.block(2);
        b.callTo(routeMid, ripup);
        const BlockId routeLatch = b.block(3);
        b.loopTo(routeLatch, routeSite, 8, 20);
        const BlockId routeEnd = b.block(2);
        b.callTo(routeEnd, congestion);

        // Phase 0 places, phase 1 routes.
        b.condTo(dispatch, routeSite, CondBehavior::phased({0.02, 0.98}));
        kit.callIf(0.97, 2, 2, cold[2]);
        kit.callIf(0.985, 2, 2, cold[3]);
        kit.loopForever(outer, 3);
    }

    kit.setPhaseLengths({500'000, 500'000});
    return kit.build();
}

} // namespace rsel
