/**
 * @file
 * The paper's three illustrative control-flow scenarios (Figures 2,
 * 3 and 4), as tiny buildable programs. Shared by the unit tests,
 * the scenario tests, and the examples.
 */

#ifndef RSEL_WORKLOADS_SCENARIOS_HPP
#define RSEL_WORKLOADS_SCENARIOS_HPP

#include <cstdint>

#include "program/program.hpp"

namespace rsel {

/**
 * Figure 2: a loop whose dominant path contains a function call,
 * with the callee at a lower address (so the call is a backward
 * branch). Cycle: A -> B -> D -> call E -> F -> return -> L -> A.
 *
 * Block names map to ids as:
 *   callee:  E = 0, F = 1
 *   main:    A = 2, B = 3, D = 4 (the call), L = 5 (the latch)
 *
 * NET selects two traces (A B D and E F L) and cannot span the
 * interprocedural cycle; LEI selects a single cycle-spanning trace
 * (a rotation of A B D E F L entering at E, whose cycle counter
 * fires earliest in the iteration).
 */
Program buildInterproceduralCycle(std::uint64_t seed = 1);

/** Block ids of buildInterproceduralCycle. */
struct InterprocCycleIds
{
    static constexpr BlockId e = 0, f = 1, a = 2, b = 3, d = 4, l = 5;
};

/**
 * Figure 3: simple nested loops. A is the outer-loop head, B a
 * single-block inner loop, C the outer latch branching back to A.
 *
 *   A = 0, B = 1 (self-loop), C = 2 (latch to A)
 *
 * NET selects three traces (B; C; A B) duplicating the inner loop.
 * LEI never duplicates B: under the literal Figure 5 semantics it
 * selects three single-block traces (B, then A, then C), one block
 * fewer than NET; the paper's idealized narrative merges C and A
 * into one trace.
 */
Program buildNestedLoops(std::uint64_t seed = 1,
                         std::uint32_t inner_trips = 4,
                         std::uint32_t outer_trips = 100000);

/** Block ids of buildNestedLoops. */
struct NestedLoopIds
{
    static constexpr BlockId a = 0, b = 1, c = 2;
};

/**
 * Figure 4: an unbiased branch followed by a biased branch, inside a
 * loop so the paths stay hot.
 *
 *   A = 0 (unbiased split), B = 1 (fall-through side),
 *   C = 2 (taken side), D = 3 (join, biased split),
 *   E = 4 (rare side), F = 5 (latch back to A)
 *
 * Single-path selection splits B and C into separate traces and
 * duplicates D and F; trace combination selects one region holding
 * both sides with no duplication.
 *
 * @param probC probability the unbiased branch goes to C.
 * @param probE probability the biased branch goes to E.
 */
Program buildUnbiasedBranch(std::uint64_t seed = 1, double probC = 0.5,
                            double probE = 0.08);

/** Block ids of buildUnbiasedBranch. */
struct UnbiasedBranchIds
{
    static constexpr BlockId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5;
};

} // namespace rsel

#endif // RSEL_WORKLOADS_SCENARIOS_HPP
