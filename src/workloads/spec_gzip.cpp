/**
 * @file
 * gzip: LZ77 compression. Execution concentrates in a modest set of
 * very hot, strongly biased loops — the hash-chain match loop inside
 * deflate, literal/match emission, Huffman bit output, CRC and copy
 * loops — which is why gzip has one of the smallest 90% cover sets
 * in the paper. Several dominant paths carry calls (longest_match,
 * send_bits), forming the interprocedural cycles NET cannot span.
 * A cold periphery (header output, error paths, table resets)
 * executes rarely.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildGzip(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "gzip", 4);

    // Leaves (callee-first layout keeps the calls backward).
    const FuncId crcByte = makeLeaf(kit, "updcrc_byte", 4, false);
    const FuncId putByte = makeLeaf(kit, "put_byte", 3, false);

    const FuncId sendBits = kit.beginFunction("send_bits");
    {
        kit.ifThen(0.7, 4, 3); // bit-buffer spill
        kit.call(2, putByte);
        kit.ret(2);
    }

    // Hot kernels.
    KernelSpec match;        // the hash-chain walk
    match.bodyInsts = 6;
    match.tripMin = 8;
    match.tripMax = 24;
    match.biasedSkipProb = 0.95; // longer match found rarely
    const FuncId longestMatch = makeKernel(kit, "longest_match", match);

    KernelSpec crc;          // CRC over the input buffer
    crc.bodyInsts = 4;
    crc.tripMin = 60;
    crc.tripMax = 140;
    crc.biasedSkipProb = 0.0;
    crc.callee = crcByte;
    const FuncId crcLoop = makeKernel(kit, "updcrc", crc);

    KernelSpec window;       // sliding-window copy
    window.bodyInsts = 5;
    window.tripMin = 40;
    window.tripMax = 90;
    window.biasedSkipProb = 0.97;
    const FuncId fillWindow = makeKernel(kit, "fill_window", window);

    KernelSpec huffBuild;    // build_tree: heap sift loop
    huffBuild.bodyInsts = 5;
    huffBuild.tripMin = 12;
    huffBuild.tripMax = 30;
    huffBuild.biasedSkipProb = 0.9;
    huffBuild.nestedInner = true; // pqdownheap inner loop
    const FuncId buildTree = makeKernel(kit, "build_tree", huffBuild);

    KernelSpec huffSend;     // compress_block: emit codes
    huffSend.bodyInsts = 5;
    huffSend.tripMin = 50;
    huffSend.tripMax = 120;
    huffSend.callee = sendBits; // call on the dominant path
    huffSend.biasedSkipProb = 0.88; // literal vs match code
    const FuncId compressBlock =
        makeKernel(kit, "compress_block", huffSend);

    KernelSpec scanSpec;     // ct_tally / run scanning
    scanSpec.bodyInsts = 4;
    scanSpec.tripMin = 30;
    scanSpec.tripMax = 70;
    scanSpec.biasedSkipProb = 0.93;
    scanSpec.rareCallee = cold[0];
    const FuncId ctTally = makeKernel(kit, "ct_tally", scanSpec);

    const FuncId flushBlock = kit.beginFunction("flush_block");
    {
        kit.callFromTwoSites(0.15, 2, 3, buildTree);
        kit.callFromTwoSites(0.15, 2, 3, compressBlock);
        kit.callIf(0.9, 2, 2, cold[1]); // stored-block fallback
        kit.ret(3);
    }

    const FuncId deflate = kit.beginFunction("deflate");
    {
        auto scan = kit.loopBegin(5);       // per input position
        kit.callFromTwoSites(0.15, 2, 4, longestMatch);          // interprocedural cycle
        kit.diamond(0.8, 3, 6, 4);          // literal vs match emit
        kit.call(2, ctTally);
        kit.callIf(0.96, 2, 3, fillWindow); // rare window refill
        kit.ifThen(0.97, 2, 2);             // block-boundary check
        kit.loopEnd(scan, 3, 100, 220);
        kit.callFromTwoSites(0.15, 2, 2, flushBlock);
        kit.ret(3);
    }

    kit.beginFunction("main");
    {
        auto files = kit.loopBegin(6); // per input buffer
        kit.callFromTwoSites(0.15, 2, 3, crcLoop);
        kit.callFromTwoSites(0.15, 2, 4, deflate);
        kit.callIf(0.95, 2, 2, cold[2]); // occasional header refresh
        kit.callIf(0.98, 2, 2, cold[3]);
        kit.loopForever(files, 3);
    }

    return kit.build();
}

} // namespace rsel
