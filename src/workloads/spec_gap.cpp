/**
 * @file
 * gap: computational group theory — an interpreter for the GAP
 * language with heavier handlers than perlbmk: big-integer
 * arithmetic, permutation products, list operations. The arithmetic
 * kernels are called from the handlers, so both the interpreter
 * rejoin structure (combination-friendly) and interprocedural
 * cycles (LEI-friendly) appear.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildGap(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "gap", 4);
    const FuncId bagLeaf = makeLeaf(kit, "NewBag", 5, false);

    KernelSpec addSpec;                // big-integer addition
    addSpec.bodyInsts = 4;
    addSpec.tripMin = 3;
    addSpec.tripMax = 12;
    addSpec.biasedSkipProb = 0.9;      // carry propagation
    const FuncId bigAdd = makeKernel(kit, "SumInt", addSpec);

    KernelSpec mulSpec;                // big-integer product
    mulSpec.bodyInsts = 4;
    mulSpec.tripMin = 3;
    mulSpec.tripMax = 10;
    mulSpec.nestedInner = true;
    mulSpec.biasedSkipProb = 0.95;
    const FuncId bigMul = makeKernel(kit, "ProdInt", mulSpec);

    KernelSpec permSpec;               // permutation product
    permSpec.bodyInsts = 7;            // index arithmetic inlined
    permSpec.tripMin = 20;
    permSpec.tripMax = 60;
    permSpec.biasedSkipProb = 0.92;
    const FuncId permProd = makeKernel(kit, "ProdPerm", permSpec);

    KernelSpec listSpec;               // list element scan
    listSpec.bodyInsts = 4;
    listSpec.tripMin = 10;
    listSpec.tripMax = 30;
    listSpec.biasedSkipProb = 0.85;
    listSpec.callee = bagLeaf;
    listSpec.calleeSkipProb = 0.7;
    const FuncId elmList = makeKernel(kit, "ElmListLevel", listSpec);

    KernelSpec orbitSpec;              // orbit enumeration
    orbitSpec.bodyInsts = 5;
    orbitSpec.tripMin = 15;
    orbitSpec.tripMax = 45;
    orbitSpec.callee = permProd;       // interprocedural cycle
    orbitSpec.biasedSkipProb = 0.8;
    orbitSpec.rareCallee = cold[0];
    const FuncId orbit = makeKernel(kit, "OrbitOp", orbitSpec);

    const FuncId evalExpr = kit.beginFunction("EvalExpr");
    {
        // Evaluator dispatch over 10 node kinds.
        kit.switchStmt(4, {4, 3, 5, 3, 4, 6, 3, 4, 5, 3},
                       {2.0, 1.6, 1.4, 1.0, 0.9, 0.8, 0.6, 0.5, 0.4,
                        0.3});
        kit.diamond(0.5, 2, 3, 3); // immediate vs boxed value
        kit.ret(2);
    }

    const FuncId execStat = kit.beginFunction("ExecStat");
    {
        kit.call(2, evalExpr);
        kit.diamond(0.4, 2, 3, 4); // assignment vs call
        kit.callIf(0.3, 2, 2, bigAdd); // most statements do arithmetic
        kit.callIf(0.7, 2, 2, bigMul);
        kit.callIf(0.6, 2, 2, elmList);
        kit.callIf(0.8, 2, 2, orbit);
        kit.callIf(0.98, 2, 2, cold[1]);
        kit.ret(2);
    }

    kit.beginFunction("main");
    {
        auto repl = kit.loopBegin(5);
        auto stats = kit.loopBegin(4); // statements in a block
        kit.callFromTwoSites(0.15, 2, 2, execStat);
        kit.loopEnd(stats, 2, 25, 80);
        kit.callIf(0.9, 2, 2, cold[2]); // garbage collection
        kit.callIf(0.97, 2, 2, cold[3]);
        kit.loopForever(repl, 3);
    }

    return kit.build();
}

} // namespace rsel
