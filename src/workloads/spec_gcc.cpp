/**
 * @file
 * gcc: optimizing compiler. The paper's stress case: "large
 * applications with many important procedures and a mix of biased
 * and unbiased branches". By far the largest static footprint of
 * the suite — dozens of pass drivers, analysis kernels and helpers,
 * an RTL pattern-matching switch with a flat target distribution,
 * many unbiased diamonds, and phase behaviour as passes run in
 * sequence. Execution spreads across far more hot paths than in any
 * other workload, giving the largest cover sets and the lowest hit
 * rates.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

namespace {

const char *const helperNames[] = {
    "fold_rtx",        "simplify_binary", "canon_reg",
    "note_stores",     "invalidate",      "cse_insn",
    "try_combine",     "subst",           "recog",
    "constrain_ops",   "reg_scan_mark",   "propagate_block",
    "mark_used_regs",  "sched_analyze",   "rank_for_sched",
    "find_reloads",    "push_reload",     "reload_reg_class",
    "record_jump",     "merge_blocks",    "life_analysis",
    "ggc_mark",        "walk_tree",       "expand_expr",
    "emit_move",       "gen_rtx",         "rtx_cost",
    "side_effects_p",  "copy_rtx",        "validate_change",
    "reg_mentioned_p", "single_set",
};

} // namespace

Program
buildGcc(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "gcc", 6);
    const FuncId obstackLeaf = makeLeaf(kit, "obstack_alloc", 5, false);
    const FuncId hashLeaf = makeLeaf(kit, "htab_find", 6, true);

    // A wide population of analysis/transform helpers with varied
    // shapes: some with loops, some with unbiased operand checks,
    // some calling the shared leaves.
    std::vector<FuncId> helpers;
    unsigned variant = 0;
    for (const char *name : helperNames) {
        KernelSpec spec;
        spec.preInsts = 3 + variant % 3;
        spec.bodyInsts = 3 + variant % 4;
        spec.tripMin = 3 + variant % 5;
        spec.tripMax = 8 + variant % 9;
        switch (variant % 5) {
          case 0:
            spec.unbiasedProb = 0.5; // operand-class diamond
            spec.biasedSkipProb = 0.0;
            break;
          case 1:
            spec.biasedSkipProb = 0.75;
            break;
          case 2:
            spec.biasedSkipProb = 0.9;
            spec.callee = obstackLeaf;
            break;
          case 3:
            spec.unbiasedProb = 0.45;
            spec.biasedSkipProb = 0.8;
            spec.callee = hashLeaf;
            spec.calleeSkipProb = 0.5;
            break;
          default:
            spec.biasedSkipProb = 0.85;
            spec.nestedInner = true;
            break;
        }
        if (variant % 7 == 3)
            spec.rareCallee = cold[variant % cold.size()];
        helpers.push_back(makeKernel(kit, name, spec));
        ++variant;
    }

    // The RTL pattern matcher: a flat switch over many insn codes.
    const FuncId recogMemoized = kit.beginFunction("recog_memoized");
    {
        std::vector<unsigned> cases;
        std::vector<double> weights;
        for (unsigned i = 0; i < 22; ++i) {
            cases.push_back(3 + i % 5);
            weights.push_back(1.0 + (i % 4) * 0.3); // nearly flat
        }
        kit.switchStmt(4, cases, weights);
        kit.ret(2);
    }

    // Pass drivers: each loops over "insns", exercising a different
    // slice of the helpers with unbiased control in between.
    std::vector<FuncId> passes;
    for (unsigned p = 0; p < 9; ++p) {
        const FuncId pass =
            kit.beginFunction("pass_" + std::to_string(p));
        auto insns = kit.loopBegin(4);
        kit.call(2, recogMemoized);
        kit.diamond(0.5, 2, 3, 3); // unbiased: pattern matched?
        kit.call(2, helpers[(p * 5 + 0) % helpers.size()]);
        kit.callIf(0.5, 2, 2, helpers[(p * 5 + 1) % helpers.size()]);
        kit.diamond(0.4, 2, 4, 3);
        kit.call(2, helpers[(p * 5 + 2) % helpers.size()]);
        kit.callIf(0.7, 2, 2, helpers[(p * 5 + 3) % helpers.size()]);
        kit.callIf(0.6, 2, 2, helpers[(p * 5 + 4) % helpers.size()]);
        kit.callIf(0.98, 2, 2, cold[p % cold.size()]);
        kit.loopEnd(insns, 3, 12, 40);
        kit.ret(2);
        passes.push_back(pass);
    }

    // The tree/RTL front end: parsing-ish loops feeding the passes.
    KernelSpec lexSpec;
    lexSpec.bodyInsts = 5;
    lexSpec.tripMin = 40;
    lexSpec.tripMax = 90;
    lexSpec.biasedSkipProb = 0.85;
    lexSpec.unbiasedProb = 0.5;
    const FuncId lexer = makeKernel(kit, "yylex", lexSpec);

    kit.beginFunction("main");
    {
        auto functions = kit.loopBegin(5); // per compiled function
        kit.callFromTwoSites(0.15, 2, 2, lexer);
        for (FuncId p : passes)
            kit.callFromTwoSites(0.15, 2, 2, p);
        kit.callIf(0.97, 2, 2, cold[5]);
        kit.loopForever(functions, 3);
    }

    // Passes dominate different stretches of execution.
    kit.setPhaseLengths({300'000, 300'000, 300'000});
    return kit.build();
}

} // namespace rsel
