/**
 * @file
 * perlbmk: the Perl interpreter. The classic bytecode-dispatch
 * shape: a hot runloop whose indirect jump fans out to many opcode
 * handlers with a flattish frequency distribution, every handler
 * rejoining the dispatch head — a dense split/rejoin structure that
 * single-path traces fragment and trace combination repairs. Heavy
 * handlers (string ops, hashes, regex) contain their own loops and
 * call shared runtime helpers.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildPerlbmk(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "perl", 4);

    // Runtime helpers.
    const FuncId svNew = makeLeaf(kit, "newSV", 5, false);
    KernelSpec growSpec;
    growSpec.bodyInsts = 4;
    growSpec.tripMin = 2;
    growSpec.tripMax = 8;
    growSpec.biasedSkipProb = 0.6;
    const FuncId svGrow = makeKernel(kit, "sv_grow", growSpec);

    KernelSpec hashSpec;
    hashSpec.bodyInsts = 4;
    hashSpec.tripMin = 2;
    hashSpec.tripMax = 7;
    hashSpec.biasedSkipProb = 0.65;
    const FuncId hvFetch = makeKernel(kit, "hv_fetch", hashSpec);

    KernelSpec cmpSpec;
    cmpSpec.bodyInsts = 3;
    cmpSpec.tripMin = 4;
    cmpSpec.tripMax = 16;
    cmpSpec.biasedSkipProb = 0.9;
    const FuncId svCmp = makeKernel(kit, "sv_cmp", cmpSpec);

    KernelSpec regexSpec;              // the regex engine inner loop
    regexSpec.bodyInsts = 5;
    regexSpec.tripMin = 10;
    regexSpec.tripMax = 40;
    regexSpec.biasedSkipProb = 0.85;
    regexSpec.nestedInner = true;      // backtracking
    regexSpec.rareCallee = cold[0];
    const FuncId regmatch = makeKernel(kit, "regmatch", regexSpec);

    KernelSpec concatSpec;             // string concat/copy loop
    concatSpec.bodyInsts = 4;
    concatSpec.tripMin = 8;
    concatSpec.tripMax = 30;
    concatSpec.biasedSkipProb = 0.95;
    concatSpec.callee = svGrow;
    concatSpec.calleeSkipProb = 0.8;
    const FuncId svCat = makeKernel(kit, "sv_catsv", concatSpec);

    const FuncId runops = kit.beginFunction("runops_standard");
    {
        auto dispatch = kit.loopBegin(4); // the runloop head

        ProgramBuilder &b = kit.builder();
        const BlockId sw = kit.straight(3);
        std::vector<BlockId> cases;
        std::vector<double> weights;
        // 18 opcode handlers; helpers distributed across them.
        const FuncId helperFor[] = {svNew, svGrow,  hvFetch,
                                    svCmp, regmatch, svCat};
        for (unsigned i = 0; i < 18; ++i) {
            const BlockId c = b.block(3 + i % 4);
            cases.push_back(c);
            weights.push_back(2.0 - (i % 6) * 0.25);
            switch (i % 4) {
              case 0: // simple handler: straight to the join
                kit.joinNext(c);
                break;
              case 1: { // handler calling a runtime helper
                b.callTo(c, helperFor[i % 6]);
                const BlockId after = b.block(2);
                kit.joinNext(after);
                break;
              }
              case 2: { // handler with an unbiased type check
                const BlockId arm = b.block(3); // c falls through
                kit.joinNext(arm);
                const BlockId other = b.block(2); // c's taken side
                b.condTo(c, other, CondBehavior::bernoulli(0.5));
                kit.joinNext(other);
                break;
              }
              default: { // heavy handler: helper then a scan loop
                b.callTo(c, helperFor[(i + 3) % 6]);
                const BlockId scanHead = b.block(3);
                const BlockId scanLatch = b.block(2);
                b.loopTo(scanLatch, scanHead, 3, 9);
                const BlockId after = b.block(1);
                kit.joinNext(after);
                break;
              }
            }
        }
        IndirectBehavior ib;
        ib.targets = cases;
        ib.weightsByPhase = {std::move(weights)};
        b.indirectJump(sw, std::move(ib));

        // All handlers rejoin here, then loop back to dispatch.
        kit.loopEnd(dispatch, 3, 300, 800);
        kit.ret(2);
    }

    kit.beginFunction("main");
    {
        auto scripts = kit.loopBegin(5);
        kit.call(3, runops);
        kit.callIf(0.95, 2, 2, cold[1]);
        kit.callIf(0.97, 2, 2, cold[2]);
        kit.callIf(0.99, 2, 2, cold[3]);
        kit.loopForever(scripts, 3);
    }

    return kit.build();
}

} // namespace rsel
