/**
 * @file
 * parser: link-grammar natural-language parser. Dominated by
 * dictionary lookups and connector matching — short, mostly
 * intraprocedural list-scan loops with moderately biased exits.
 * Like crafty, the dominant cycles rarely cross procedure
 * boundaries, so LEI's region-transition gain is minimal here
 * (Figure 8's flat benchmark).
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildParser(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "parser", 4);
    const FuncId strcmpLeaf = makeLeaf(kit, "streq", 4, true);

    auto intraKernel = [&](const char *name, unsigned body,
                           std::uint32_t tmin, std::uint32_t tmax,
                           double bias) {
        KernelSpec spec;
        spec.bodyInsts = body;
        spec.tripMin = tmin;
        spec.tripMax = tmax;
        spec.biasedSkipProb = bias;
        return makeKernel(kit, name, spec);
    };

    const FuncId hashWord = intraKernel("hash_word", 3, 3, 10, 0.0);
    const FuncId chainWalk =
        intraKernel("dict_chain_walk", 4, 2, 8, 0.75);
    const FuncId matchScan =
        intraKernel("connector_match", 5, 3, 9, 0.85);
    const FuncId powerPrune =
        intraKernel("power_prune", 4, 5, 15, 0.8);
    const FuncId regionScan =
        intraKernel("region_valid", 4, 4, 12, 0.9);

    const FuncId dictLookup = kit.beginFunction("dict_lookup");
    {
        kit.call(2, hashWord);
        kit.callFromTwoSites(0.15, 2, 2, chainWalk);
        kit.callIf(0.6, 2, 2, strcmpLeaf); // full compare on hits
        kit.ret(2);
    }

    const FuncId match = kit.beginFunction("match");
    {
        // The hottest kernel: nested intraprocedural list scans.
        auto left = kit.loopBegin(5);
        auto right = kit.loopBegin(4);
        kit.diamond(0.6, 2, 3, 3); // connector types
        kit.loopEnd(right, 2, 3, 9);
        kit.loopEnd(left, 2, 3, 9);
        kit.ret(2);
    }

    const FuncId count = kit.beginFunction("count");
    {
        auto span = kit.loopBegin(5);
        kit.callFromTwoSites(0.15, 2, 2, matchScan);
        kit.callFromTwoSites(0.15, 2, 2, match);
        kit.diamond(0.5, 2, 3, 3);     // unbiased: link formed?
        kit.callIf(0.9, 2, 2, regionScan);
        kit.loopEnd(span, 2, 8, 24);
        kit.ret(3);
    }

    const FuncId expressionPrune = kit.beginFunction("expression_prune");
    {
        auto rounds = kit.loopBegin(4);
        kit.call(2, powerPrune);
        kit.ifThen(0.6, 2, 3); // fixed point reached?
        kit.loopEnd(rounds, 2, 2, 5);
        kit.ret(2);
    }

    KernelSpec tokenSpec;              // sentence tokenizer
    tokenSpec.bodyInsts = 4;
    tokenSpec.tripMin = 10;
    tokenSpec.tripMax = 25;
    tokenSpec.biasedSkipProb = 0.88;
    tokenSpec.rareCallee = cold[0];
    const FuncId tokenize = makeKernel(kit, "separate_sentence", tokenSpec);

    kit.beginFunction("main");
    {
        auto sentences = kit.loopBegin(5);
        kit.callFromTwoSites(0.15, 2, 2, tokenize);
        auto words = kit.loopBegin(4);
        kit.callFromTwoSites(0.15, 2, 2, dictLookup);
        kit.loopEnd(words, 2, 8, 20);
        kit.callFromTwoSites(0.15, 2, 2, expressionPrune);
        kit.call(2, count);
        kit.callIf(0.95, 2, 2, cold[1]);
        kit.callIf(0.97, 2, 2, cold[2]);
        kit.callIf(0.99, 2, 2, cold[3]);
        kit.loopForever(sentences, 3);
    }

    return kit.build();
}

} // namespace rsel
