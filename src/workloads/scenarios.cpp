#include "workloads/scenarios.hpp"

#include "program/program_builder.hpp"

namespace rsel {

Program
buildInterproceduralCycle(std::uint64_t seed)
{
    ProgramBuilder b(seed);

    // Callee first: the call to it is a backward branch (Figure 2
    // assumes "the function beginning with E is at a lower address").
    const FuncId callee = b.beginFunction("callee");
    b.block(3);                 // E
    const BlockId f = b.block(3);
    b.ret(f);                   // F: returns to the call fall-through

    b.beginFunction("main");
    const BlockId a = b.block(3);
    b.block(3);                 // B: falls through to D
    const BlockId d = b.block(2);
    b.callTo(d, callee);        // D: backward call on the hot path
    const BlockId l = b.block(2);
    b.jumpTo(l, a);             // L: loop forever

    return b.build();
}

Program
buildNestedLoops(std::uint64_t seed, std::uint32_t inner_trips,
                 std::uint32_t outer_trips)
{
    ProgramBuilder b(seed);

    b.beginFunction("main");
    const BlockId a = b.block(3);       // outer-loop head
    const BlockId inner = b.block(3);   // B: single-block inner loop
    b.loopTo(inner, inner, inner_trips, inner_trips);
    const BlockId c = b.block(3);       // outer latch
    b.loopTo(c, a, outer_trips, outer_trips);
    const BlockId stop = b.block(1);    // fall-through for the latch
    b.halt(stop);
    b.setEntry(a);

    return b.build();
}

Program
buildUnbiasedBranch(std::uint64_t seed, double probC, double probE)
{
    ProgramBuilder b(seed);

    b.beginFunction("main");
    const BlockId a = b.block(2);  // unbiased split
    const BlockId blkB = b.block(3);
    const BlockId c = b.block(3);  // falls through to D
    const BlockId d = b.block(2);  // biased split (join of B and C)
    const BlockId e = b.block(3);  // rare side
    const BlockId f = b.block(2);  // latch

    b.condTo(a, c, CondBehavior::bernoulli(probC));
    b.jumpTo(blkB, d);
    // D: taken -> F (common), fall-through -> E (rare).
    b.condTo(d, f, CondBehavior::bernoulli(1.0 - probE));
    b.jumpTo(e, f);
    b.jumpTo(f, a);

    return b.build();
}

} // namespace rsel
