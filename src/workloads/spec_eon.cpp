/**
 * @file
 * eon: C++ probabilistic ray tracer. Small, widely shared callees —
 * the paper names the ggPoint3 constructors — invoked from many hot
 * call sites across the shading and intersection functions. Once a
 * trace is selected for such a constructor, every frequently
 * executing caller selects a trace that the constructor's trace
 * exit-dominates, making eon the paper's Figure 12 outlier. Virtual
 * dispatch over surface shaders adds indirect-call fan-out.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildEon(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "eon", 3);

    // The shared tiny callees (constructors / vector ops).
    const FuncId ctorPoint =
        makeLeaf(kit, "ggPoint3::ggPoint3", 4, false);
    const FuncId ctorVec =
        makeLeaf(kit, "ggVector3::ggVector3", 4, false);
    const FuncId ctorOnb = makeLeaf(kit, "ggONB3::ggONB3", 5, false);
    const FuncId dotLeaf = makeLeaf(kit, "ggDot", 5, false);
    const FuncId crossLeaf = makeLeaf(kit, "ggCross", 6, false);

    // Surface shaders: each a hot function with several constructor
    // call sites on its dominant path.
    std::vector<FuncId> shaders;
    const char *shaderNames[] = {
        "LambertianBRDF::eval", "SpecularBRDF::eval",
        "DielectricBRDF::eval", "PolishedBRDF::eval",
        "TextureBRDF::eval",    "EmissiveBRDF::eval",
    };
    unsigned twist = 0;
    for (const char *name : shaderNames) {
        const FuncId f = kit.beginFunction(name);
        kit.call(3, ctorVec);
        kit.call(2, dotLeaf);
        kit.diamond(0.4 + 0.04 * twist, 2, 4, 3);
        kit.call(2, ctorPoint);
        if (twist % 2 == 0)
            kit.call(2, crossLeaf);
        if (twist % 3 == 0)
            kit.call(2, ctorOnb);
        kit.ifThen(0.6, 2, 3);
        kit.call(2, ctorVec);
        kit.ret(3);
        ++twist;
        shaders.push_back(f);
    }

    // Geometry kernels, all constructing points/vectors on the path.
    KernelSpec gridSpec;
    gridSpec.bodyInsts = 5;
    gridSpec.tripMin = 4;
    gridSpec.tripMax = 12;
    gridSpec.biasedSkipProb = 0.7; // primitive in cell?
    gridSpec.callee = ctorPoint;
    const FuncId gridWalk = makeKernel(kit, "ggGrid::walk", gridSpec);

    KernelSpec triSpec;
    triSpec.bodyInsts = 6;
    triSpec.tripMin = 3;
    triSpec.tripMax = 8;
    triSpec.biasedSkipProb = 0.8;
    triSpec.callee = crossLeaf;
    const FuncId triTest = makeKernel(kit, "ggTriangle::hit", triSpec);

    KernelSpec sphSpec;
    sphSpec.bodyInsts = 5;
    sphSpec.tripMin = 2;
    sphSpec.tripMax = 6;
    sphSpec.biasedSkipProb = 0.75;
    sphSpec.callee = dotLeaf;
    const FuncId sphTest = makeKernel(kit, "ggSphere::hit", sphSpec);

    const FuncId intersect = kit.beginFunction("ggGrid::intersect");
    {
        kit.call(3, gridWalk);
        kit.call(2, triTest);
        kit.callIf(0.5, 2, 2, sphTest);
        kit.call(2, ctorPoint); // hit-point construction
        kit.ret(3);
    }

    const FuncId sampler = kit.beginFunction("ggJitterSample");
    {
        auto pts = kit.loopBegin(4);
        kit.call(2, ctorVec);
        kit.loopEnd(pts, 2, 3, 6);
        kit.ret(2);
    }

    const FuncId trace = kit.beginFunction("ggRayTrace");
    {
        kit.call(3, intersect);
        kit.indirectCall(3, shaders, {1.0, 0.9, 0.7, 0.6, 0.5, 0.3});
        kit.call(2, ctorVec);
        kit.ifThen(0.6, 2, 4); // secondary ray?
        kit.call(2, ctorPoint);
        kit.callIf(0.97, 2, 2, cold[0]);
        kit.ret(3);
    }

    kit.beginFunction("main");
    {
        auto pixels = kit.loopBegin(5);
        kit.call(2, sampler);
        auto samples = kit.loopBegin(4); // jittered samples
        kit.call(2, trace);
        kit.loopEnd(samples, 2, 4, 8);
        kit.call(2, ctorPoint);          // pixel accumulation
        kit.callIf(0.97, 2, 2, cold[1]);
        kit.callIf(0.99, 2, 2, cold[2]);
        kit.loopForever(pixels, 3);
    }

    return kit.build();
}

} // namespace rsel
