/**
 * @file
 * crafty: chess search. Heavy 64-bit bitboard manipulation in
 * self-contained intraprocedural loops — attack generation, move
 * ordering, evaluation scans — whose dominant cycles contain no
 * calls. NET already spans those cycles, so crafty is the workload
 * where LEI gains least (the paper's Figure 7/8 outlier). Calls to
 * helpers exist but sit behind biased guards off the hot cycles.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildCrafty(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "crafty", 4);
    const FuncId popcnt = makeLeaf(kit, "popcount", 3, false);

    // Intraprocedural hot kernels: no calls on the dominant paths.
    auto intraKernel = [&](const char *name, unsigned body,
                           std::uint32_t tmin, std::uint32_t tmax,
                           double bias, bool nested) {
        KernelSpec spec;
        spec.bodyInsts = body;
        spec.tripMin = tmin;
        spec.tripMax = tmax;
        spec.biasedSkipProb = bias;
        spec.nestedInner = nested;
        return makeKernel(kit, name, spec);
    };

    // No nested inner loops here: crafty's kernels are flat bitboard
    // scans NET already spans, which is why LEI gains least on it.
    const FuncId attacks =
        intraKernel("attacks_from", 6, 8, 16, 0.92, false);
    const FuncId mobility =
        intraKernel("mobility_scan", 5, 10, 24, 0.9, false);
    const FuncId pawnScore =
        intraKernel("evaluate_pawns", 5, 6, 14, 0.94, false);
    const FuncId kingSafety =
        intraKernel("king_safety", 5, 4, 10, 0.9, false);
    const FuncId ordering =
        intraKernel("next_move_sort", 5, 10, 30, 0.85, false);
    const FuncId hashLoop =
        intraKernel("hash_chain_scan", 4, 2, 6, 0.8, false);

    const FuncId evaluate = kit.beginFunction("evaluate");
    {
        kit.straight(12);           // material and PST sums
        kit.call(2, pawnScore);     // off the innermost cycles
        kit.callFromTwoSites(0.15, 2, 2, kingSafety);
        kit.callFromTwoSites(0.15, 2, 2, popcnt);
        kit.ifThen(0.7, 3, 6);      // endgame scaling
        kit.straight(8);
        kit.ret(3);
    }

    const FuncId quiesce = kit.beginFunction("quiesce");
    {
        auto caps = kit.loopBegin(5); // capture loop (no calls)
        kit.ifThen(0.75, 2, 4);       // SEE pruning
        kit.loopEnd(caps, 2, 4, 10);
        kit.callFromTwoSites(0.15, 2, 2, evaluate);
        kit.ret(3);
    }

    const FuncId genMoves = kit.beginFunction("generate_moves");
    {
        auto pieces = kit.loopBegin(6);  // per piece bitboard
        auto targets = kit.loopBegin(5); // per target square
        kit.ifThen(0.85, 2, 3);          // capture vs quiet
        kit.loopEnd(targets, 2, 4, 10);
        kit.loopEnd(pieces, 2, 8, 16);
        kit.ret(3);
    }

    const FuncId search = kit.beginFunction("search");
    {
        kit.call(2, genMoves);           // once per node
        kit.callIf(0.8, 2, 2, hashLoop); // transposition probe
        auto moves = kit.loopBegin(6);   // per move at this node
        kit.callFromTwoSites(0.15, 2, 2, ordering);
        kit.callFromTwoSites(0.15, 2, 2, attacks);
        kit.callFromTwoSites(0.15, 2, 2, mobility);
        kit.callIf(0.6, 2, 2, quiesce);  // leaf-ish children
        kit.ifThen(0.7, 3, 4);           // beta-cutoff bookkeeping
        kit.callIf(0.97, 2, 2, cold[0]);
        kit.loopEnd(moves, 3, 15, 40);
        kit.callIf(0.98, 2, 2, cold[1]);
        kit.ret(3);
    }

    kit.beginFunction("main");
    {
        auto iterate = kit.loopBegin(5); // iterative deepening
        kit.call(3, search);
        kit.callIf(0.95, 2, 2, cold[2]); // PV display etc.
        kit.callIf(0.98, 2, 2, cold[3]);
        kit.loopForever(iterate, 3);
    }

    return kit.build();
}

} // namespace rsel
