/**
 * @file
 * Motif-level construction kit for synthetic workloads.
 *
 * Wraps ProgramBuilder with the control-flow motifs the SPEC-like
 * suite is assembled from: straight-line runs, if/else diamonds with
 * a configurable taken probability, counted loops, calls, indirect
 * dispatch, and interpreter-style switches. Motifs append blocks in
 * layout order; a motif whose paths rejoin defers the join target to
 * the next block created, so workloads read top-to-bottom like the
 * code they imitate.
 */

#ifndef RSEL_WORKLOADS_WORKLOAD_KIT_HPP
#define RSEL_WORKLOADS_WORKLOAD_KIT_HPP

#include <string>
#include <vector>

#include "program/program_builder.hpp"

namespace rsel {

/** Fluent workload construction over ProgramBuilder. */
class WorkloadKit
{
  public:
    /** Handle for closing a loop opened with loopBegin(). */
    struct LoopHandle
    {
        BlockId head = invalidBlock;
    };

    /** @param seed seed for instruction-size synthesis. */
    explicit WorkloadKit(std::uint64_t seed = 1);

    /** Direct access for constructs the motifs do not cover. */
    ProgramBuilder &builder() { return builder_; }

    /** Begin a function; subsequent motifs build its body. */
    FuncId beginFunction(const std::string &name);

    /**
     * Append one straight-line block (resolving pending joins).
     * @return the block id.
     */
    BlockId straight(unsigned ninsts);

    /**
     * Append an if/else diamond. Layout: split, then-side,
     * else-side; both sides rejoin at the next block created.
     * @param probElse probability of branching to the else side
     *                 (0.5 models the paper's unbiased branch).
     */
    void diamond(double probElse, unsigned nSplit, unsigned nThen,
                 unsigned nElse);

    /**
     * Append an if-then (no else): the split either falls into the
     * then-side or branches past it to the next block created.
     * @param probSkip probability of skipping the then-side.
     */
    void ifThen(double probSkip, unsigned nSplit, unsigned nThen);

    /** Open a counted loop; its head is the next block. */
    LoopHandle loopBegin(unsigned nHead);

    /**
     * Close a loop with a latch drawing trip counts uniformly from
     * [tripMin, tripMax]; execution continues after the latch.
     */
    void loopEnd(LoopHandle loop, unsigned nLatch,
                 std::uint32_t trip_min, std::uint32_t trip_max);

    /** Close a loop with an unconditional back edge (no exit). */
    void loopForever(LoopHandle loop, unsigned nLatch);

    /** Append a block that calls `callee` and continues after it. */
    void call(unsigned nBlock, FuncId callee);

    /**
     * Append a conditional call: with probability `probSkip` the
     * split branches past the call site to the next block created;
     * otherwise it falls into the site, calls `callee`, and returns
     * to the same join.
     */
    void callIf(double probSkip, unsigned nSplit, unsigned nSite,
                FuncId callee);

    /**
     * Append a call made from two distinct sites: a split picks one
     * of two call-site blocks (probability `probB` for the second),
     * both invoking `callee` and rejoining at the next block. Models
     * functions invoked from multiple hot places — the callee's
     * entry gains a second executed predecessor, which blocks the
     * exit-domination condition (paper Section 4.1).
     */
    void callFromTwoSites(double probB, unsigned nSplit,
                          unsigned nSite, FuncId callee);

    /**
     * Append a block making a weighted indirect call to the entry of
     * one of `callees` and continuing after it (virtual dispatch).
     */
    void indirectCall(unsigned nBlock, std::vector<FuncId> callees,
                      std::vector<double> weights);

    /**
     * Append an interpreter-style switch: an indirect jump over
     * `caseSizes.size()` case blocks, all rejoining at the next
     * block created.
     */
    void switchStmt(unsigned nSwitch,
                    const std::vector<unsigned> &caseSizes,
                    std::vector<double> weights);

    /**
     * For hand-built constructs: make `src` (currently without a
     * terminator) jump to the next block created by the kit.
     */
    void joinNext(BlockId src);

    /**
     * For hand-built constructs: make `src` a conditional whose
     * taken target is the next block created by the kit.
     */
    void skipToNext(BlockId src, double probTaken);

    /** Append a returning block (ends the current function body). */
    void ret(unsigned ninsts);

    /** Append a halting block. */
    void halt(unsigned ninsts);

    /** Set the program entry block. */
    void setEntry(BlockId entry);

    /** Set the phase schedule (executed blocks per phase). */
    void setPhaseLengths(std::vector<std::uint64_t> lengths);

    /** Finalize the program. */
    Program build();

  private:
    /** A conditional whose taken target is the next block created. */
    struct PendingSkip
    {
        BlockId src = invalidBlock;
        double probTaken = 0.0;
    };

    /** Create a block, resolving all pending joins onto it. */
    BlockId newBlock(unsigned ninsts);

    ProgramBuilder builder_;
    std::vector<BlockId> pendingJoins_;
    std::vector<PendingSkip> pendingSkips_;
};

} // namespace rsel

#endif // RSEL_WORKLOADS_WORKLOAD_KIT_HPP
