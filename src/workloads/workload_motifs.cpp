#include "workloads/workload_motifs.hpp"

namespace rsel {

FuncId
makeKernel(WorkloadKit &kit, const std::string &name,
           const KernelSpec &spec)
{
    const FuncId f = kit.beginFunction(name);
    ProgramBuilder &b = kit.builder();
    if (spec.preInsts > 0)
        kit.straight(spec.preInsts);

    auto loop = kit.loopBegin(spec.bodyInsts);

    // The biased branches are modelled as `continue` statements:
    // two splits in the body share one arm that jumps back to the
    // loop head. Sharing gives the arm two executed predecessors,
    // as compiler-generated code typically has, which keeps
    // exit-domination rates realistic (a single-predecessor arm
    // trace is exit-dominated by construction).
    std::vector<BlockId> continueSplits;

    if (spec.nestedInner) {
        auto inner = kit.loopBegin(3);
        kit.loopEnd(inner, 2, spec.innerTripMin, spec.innerTripMax);
    }
    if (spec.biasedSkipProb > 0.0)
        continueSplits.push_back(kit.straight(2));
    if (spec.callee != invalidFunc) {
        if (spec.calleeSkipProb > 0.0)
            kit.callIf(spec.calleeSkipProb, 2, 2, spec.callee);
        else
            kit.callFromTwoSites(0.15, 2, 2, spec.callee);
    }
    if (spec.unbiasedProb > 0.0)
        kit.diamond(spec.unbiasedProb, 2, 4, 4);
    if (spec.biasedSkipProb > 0.0)
        continueSplits.push_back(kit.straight(2));
    if (spec.rareCallee != invalidFunc)
        kit.callIf(0.97, 2, 2, spec.rareCallee);

    kit.loopEnd(loop, 2, spec.tripMin, spec.tripMax);
    kit.ret(spec.retInsts);

    if (!continueSplits.empty()) {
        // The shared arm sits after the return, out of the
        // fall-through chain, and loops back to the head.
        const BlockId arm = b.block(spec.biasedArmInsts);
        b.jumpTo(arm, loop.head);
        for (BlockId split : continueSplits) {
            b.condTo(split, arm,
                     CondBehavior::bernoulli(1.0 -
                                             spec.biasedSkipProb));
        }
    }
    return f;
}

FuncId
makeLeaf(WorkloadKit &kit, const std::string &name, unsigned insts,
         bool with_loop)
{
    const FuncId f = kit.beginFunction(name);
    if (with_loop) {
        kit.straight(insts > 2 ? insts / 2 : 1);
        auto l = kit.loopBegin(3);
        kit.loopEnd(l, 2, 2, 6);
        kit.ret(2);
    } else {
        kit.ret(insts);
    }
    return f;
}

FuncId
makeColdUtil(WorkloadKit &kit, const std::string &name,
             unsigned variant)
{
    const FuncId f = kit.beginFunction(name);
    switch (variant % 4) {
      case 0: { // error formatting: loop over a message buffer
        kit.straight(6);
        auto l = kit.loopBegin(4);
        kit.ifThen(0.6, 2, 3);
        kit.loopEnd(l, 2, 8, 24);
        break;
      }
      case 1: { // allocation slow path: chained checks then a scan
        kit.ifThen(0.5, 3, 4);
        kit.ifThen(0.5, 3, 4);
        auto l = kit.loopBegin(3);
        kit.loopEnd(l, 2, 4, 12);
        break;
      }
      case 2: { // statistics dump: two sequential loops
        auto l1 = kit.loopBegin(4);
        kit.loopEnd(l1, 2, 5, 10);
        auto l2 = kit.loopBegin(3);
        kit.ifThen(0.7, 2, 2);
        kit.loopEnd(l2, 2, 5, 10);
        break;
      }
      default: { // table rebuild: nested cold loops
        auto outer = kit.loopBegin(4);
        auto inner = kit.loopBegin(3);
        kit.loopEnd(inner, 2, 3, 7);
        kit.loopEnd(outer, 2, 3, 7);
        break;
      }
    }
    kit.ret(3);
    return f;
}

std::vector<FuncId>
makeColdPeriphery(WorkloadKit &kit, const std::string &prefix,
                  unsigned count)
{
    std::vector<FuncId> cold;
    cold.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        cold.push_back(makeColdUtil(
            kit, prefix + "_cold" + std::to_string(i), i));
    }
    return cold;
}

} // namespace rsel
