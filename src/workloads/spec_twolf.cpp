/**
 * @file
 * twolf: standard-cell placement by simulated annealing. The
 * accept/reject decision at the heart of the annealer is the
 * textbook unbiased branch (paper Figure 4): both outcomes are
 * frequent, lead through different bookkeeping, and rejoin at the
 * next move. Cost evaluation runs through a chain of small
 * functions on the dominant path, giving interprocedural cycles.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildTwolf(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "twolf", 4);
    const FuncId rngLeaf = makeLeaf(kit, "yacm_random", 4, false);

    KernelSpec netSpec;                // per-net bounding-box cost
    netSpec.bodyInsts = 8;             // dimbox work inlined
    netSpec.tripMin = 3;
    netSpec.tripMax = 9;
    netSpec.unbiasedProb = 0.5;        // pin moved left/right
    netSpec.biasedSkipProb = 0.0;
    const FuncId newDbox = makeKernel(kit, "new_dbox", netSpec);

    KernelSpec overlapSpec;            // row-overlap penalty scan
    overlapSpec.bodyInsts = 4;
    overlapSpec.tripMin = 4;
    overlapSpec.tripMax = 10;
    overlapSpec.biasedSkipProb = 0.75;
    const FuncId newOld = makeKernel(kit, "new_old", overlapSpec);

    const FuncId pickCell = kit.beginFunction("pick_cell");
    {
        kit.call(2, rngLeaf);
        kit.ifThen(0.7, 2, 3); // retry pick
        kit.ret(2);
    }

    const FuncId acceptFn = kit.beginFunction("accept_func");
    {
        kit.callFromTwoSites(0.15, 2, 2, rngLeaf);
        kit.diamond(0.5, 3, 3, 3); // Boltzmann test
        kit.ret(2);
    }

    const FuncId uCellSwap = kit.beginFunction("ucxx2");
    {
        kit.callFromTwoSites(0.15, 2, 2, pickCell);
        auto nets = kit.loopBegin(4);  // nets touched by the move
        kit.callFromTwoSites(0.15, 2, 2, newDbox);          // dominant-path call
        kit.loopEnd(nets, 2, 3, 10);
        kit.call(2, newOld);
        kit.callFromTwoSites(0.15, 2, 2, acceptFn);
        // THE unbiased branch: accept vs reject, both hot, both
        // rejoining at the return.
        kit.diamond(0.5, 3, 6, 6);
        kit.callIf(0.97, 2, 2, cold[0]);
        kit.ret(3);
    }

    const FuncId uCellMove = kit.beginFunction("ucxx1");
    {
        kit.callFromTwoSites(0.15, 2, 2, pickCell);
        auto nets = kit.loopBegin(4);
        kit.callFromTwoSites(0.15, 2, 2, newDbox);
        kit.loopEnd(nets, 2, 2, 7);
        kit.call(2, acceptFn);
        kit.diamond(0.5, 3, 5, 5);
        kit.ret(3);
    }

    KernelSpec penaltySpec;            // row-penalty recompute
    penaltySpec.bodyInsts = 4;
    penaltySpec.tripMin = 20;
    penaltySpec.tripMax = 50;
    penaltySpec.biasedSkipProb = 0.92;
    penaltySpec.nestedInner = true;    // per-row inner scan
    penaltySpec.rareCallee = cold[1];
    const FuncId rowPenalty = makeKernel(kit, "row_penalty", penaltySpec);

    kit.beginFunction("main");
    {
        auto temps = kit.loopBegin(5);  // temperature schedule
        auto moves = kit.loopBegin(4);  // moves per temperature
        kit.diamond(0.4, 2, 2, 2);      // swap vs displace
        kit.callFromTwoSites(0.15, 2, 2, uCellSwap);
        kit.callIf(0.5, 2, 2, uCellMove);
        kit.loopEnd(moves, 2, 60, 160);
        kit.callFromTwoSites(0.15, 2, 2, rowPenalty);
        kit.straight(4);                // cooling bookkeeping
        kit.callIf(0.95, 2, 2, cold[2]);
        kit.callIf(0.98, 2, 2, cold[3]);
        kit.loopForever(temps, 3);
    }

    return kit.build();
}

} // namespace rsel
