/**
 * @file
 * Parameterized generators for the recurring structures of the
 * SPEC-like suite: hot kernels (loops with biased/unbiased branches,
 * calls on the dominant path, optional inner loops), leaf helpers,
 * and cold peripheral utilities.
 *
 * The paper's effects depend on structural properties the generators
 * expose as knobs:
 *  - a call on a loop's dominant path creates the interprocedural
 *    cycle NET cannot span (Figure 2);
 *  - a nested inner loop entered by fall-through recreates the
 *    Figure 3 duplication pattern under NET;
 *  - an unbiased diamond inside a loop body creates the Figure 4
 *    tail-duplication pattern that trace combination repairs;
 *  - cold utilities give NET profiling counters that LEI avoids
 *    (their targets rarely sit in the history buffer — Figure 10).
 */

#ifndef RSEL_WORKLOADS_WORKLOAD_MOTIFS_HPP
#define RSEL_WORKLOADS_WORKLOAD_MOTIFS_HPP

#include <string>

#include "workloads/workload_kit.hpp"

namespace rsel {

/** Specification of a generated hot-kernel function. */
struct KernelSpec
{
    /** Straight-line instructions before the loop. */
    unsigned preInsts = 4;
    /** Loop trip-count range. */
    std::uint32_t tripMin = 10;
    std::uint32_t tripMax = 30;
    /** Straight-line instructions at the loop head. */
    unsigned bodyInsts = 5;
    /**
     * Probability of skipping the biased arm in the body (0 = no
     * biased branch). Realistic hot loops are >= 0.9.
     */
    double biasedSkipProb = 0.95;
    /** Instructions in the biased arm. */
    unsigned biasedArmInsts = 3;
    /**
     * If positive, an if/else diamond with this else-probability is
     * placed in the body (0.5 = the paper's unbiased branch).
     */
    double unbiasedProb = 0.0;
    /** Callee invoked on the dominant path (invalidFunc = none). */
    FuncId callee = invalidFunc;
    /**
     * Skip probability for the dominant-path call; 0 makes the call
     * unconditional.
     */
    double calleeSkipProb = 0.0;
    /** Rarely invoked callee (cold path), skip probability 0.97. */
    FuncId rareCallee = invalidFunc;
    /** Add a small inner loop at the top of the body (Figure 3). */
    bool nestedInner = false;
    /** Inner-loop trip-count range (when nestedInner). */
    std::uint32_t innerTripMin = 3;
    std::uint32_t innerTripMax = 8;
    /** Instructions in the function's return block. */
    unsigned retInsts = 3;
};

/** Generate a hot-kernel function from a spec. @return its id. */
FuncId makeKernel(WorkloadKit &kit, const std::string &name,
                  const KernelSpec &spec);

/**
 * Generate a small leaf helper: straight-line work, optionally a
 * tiny loop, then return. Shared leaves called from many kernels
 * model eon's constructor pattern.
 */
FuncId makeLeaf(WorkloadKit &kit, const std::string &name,
                unsigned insts, bool with_loop);

/**
 * Generate a cold utility (error handling, allocation slow path,
 * statistics dump): contains loops and branches but is reached
 * rarely. `variant` varies the shape.
 */
FuncId makeColdUtil(WorkloadKit &kit, const std::string &name,
                    unsigned variant);

/**
 * Attach a standard cold periphery to a workload: `count` cold
 * utilities are created and returned so the caller can sprinkle
 * rare call sites (kit.callIf with skip 0.97+) over its hot code.
 */
std::vector<FuncId> makeColdPeriphery(WorkloadKit &kit,
                                      const std::string &prefix,
                                      unsigned count);

} // namespace rsel

#endif // RSEL_WORKLOADS_WORKLOAD_MOTIFS_HPP
