#include "workloads/workload_kit.hpp"

#include "support/error.hpp"

namespace rsel {

WorkloadKit::WorkloadKit(std::uint64_t seed)
    : builder_(seed)
{}

FuncId
WorkloadKit::beginFunction(const std::string &name)
{
    RSEL_ASSERT(pendingJoins_.empty() && pendingSkips_.empty(),
                "unresolved joins at function boundary");
    return builder_.beginFunction(name);
}

BlockId
WorkloadKit::newBlock(unsigned ninsts)
{
    const BlockId id = builder_.block(ninsts);
    for (BlockId src : pendingJoins_)
        builder_.jumpTo(src, id);
    pendingJoins_.clear();
    for (const PendingSkip &skip : pendingSkips_)
        builder_.condTo(skip.src, id,
                        CondBehavior::bernoulli(skip.probTaken));
    pendingSkips_.clear();
    return id;
}

BlockId
WorkloadKit::straight(unsigned ninsts)
{
    return newBlock(ninsts);
}

void
WorkloadKit::diamond(double probElse, unsigned nSplit, unsigned nThen,
                     unsigned nElse)
{
    const BlockId split = newBlock(nSplit);
    const BlockId thenSide = builder_.block(nThen);
    const BlockId elseSide = builder_.block(nElse);
    builder_.condTo(split, elseSide, CondBehavior::bernoulli(probElse));
    // The then-side jumps over the else-side to the join; the
    // else-side falls through to the join (the next block created).
    pendingJoins_.push_back(thenSide);
}

void
WorkloadKit::ifThen(double probSkip, unsigned nSplit, unsigned nThen)
{
    const BlockId split = newBlock(nSplit);
    builder_.block(nThen); // falls through to the join
    // The split's taken direction skips the then-side; its target is
    // the next block created, so the terminator is deferred.
    pendingSkips_.push_back({split, probSkip});
}

WorkloadKit::LoopHandle
WorkloadKit::loopBegin(unsigned nHead)
{
    LoopHandle handle;
    handle.head = newBlock(nHead);
    return handle;
}

void
WorkloadKit::loopEnd(LoopHandle loop, unsigned nLatch,
                     std::uint32_t trip_min, std::uint32_t trip_max)
{
    const BlockId latch = newBlock(nLatch);
    builder_.loopTo(latch, loop.head, trip_min, trip_max);
}

void
WorkloadKit::loopForever(LoopHandle loop, unsigned nLatch)
{
    const BlockId latch = newBlock(nLatch);
    builder_.jumpTo(latch, loop.head);
}

void
WorkloadKit::call(unsigned nBlock, FuncId callee)
{
    const BlockId site = newBlock(nBlock);
    builder_.callTo(site, callee);
}

void
WorkloadKit::callIf(double probSkip, unsigned nSplit, unsigned nSite,
                    FuncId callee)
{
    const BlockId split = newBlock(nSplit);
    const BlockId site = builder_.block(nSite);
    builder_.callTo(site, callee);
    // The callee returns to the site's fall-through — the join — and
    // the split's taken direction skips straight to the same join.
    pendingSkips_.push_back({split, probSkip});
}

void
WorkloadKit::callFromTwoSites(double probB, unsigned nSplit,
                              unsigned nSite, FuncId callee)
{
    const BlockId split = newBlock(nSplit);
    const BlockId siteA = builder_.block(nSite); // fall-through side
    builder_.callTo(siteA, callee);
    const BlockId afterA = builder_.block(1);
    pendingJoins_.push_back(afterA);
    const BlockId siteB = builder_.block(nSite); // taken side
    builder_.callTo(siteB, callee);
    builder_.condTo(split, siteB, CondBehavior::bernoulli(probB));
    // siteB's return lands on its fall-through — the join created
    // by the next block, same place afterA jumps to.
}

void
WorkloadKit::indirectCall(unsigned nBlock, std::vector<FuncId> callees,
                          std::vector<double> weights)
{
    const BlockId site = newBlock(nBlock);
    std::vector<BlockId> targets;
    targets.reserve(callees.size());
    for (FuncId f : callees)
        targets.push_back(builder_.functionEntry(f));
    IndirectBehavior ib;
    ib.targets = std::move(targets);
    ib.weightsByPhase = {std::move(weights)};
    builder_.indirectCall(site, std::move(ib));
}

void
WorkloadKit::switchStmt(unsigned nSwitch,
                        const std::vector<unsigned> &caseSizes,
                        std::vector<double> weights)
{
    RSEL_ASSERT(!caseSizes.empty(), "switch needs at least one case");
    RSEL_ASSERT(caseSizes.size() == weights.size(),
                "switch weights must match cases");
    const BlockId sw = newBlock(nSwitch);
    std::vector<BlockId> cases;
    cases.reserve(caseSizes.size());
    for (unsigned n : caseSizes) {
        const BlockId c = builder_.block(n);
        cases.push_back(c);
        pendingJoins_.push_back(c); // every case jumps to the join
    }
    IndirectBehavior ib;
    ib.targets = cases;
    ib.weightsByPhase = {std::move(weights)};
    builder_.indirectJump(sw, std::move(ib));
}

void
WorkloadKit::joinNext(BlockId src)
{
    pendingJoins_.push_back(src);
}

void
WorkloadKit::skipToNext(BlockId src, double probTaken)
{
    pendingSkips_.push_back({src, probTaken});
}

void
WorkloadKit::ret(unsigned ninsts)
{
    const BlockId b = newBlock(ninsts);
    builder_.ret(b);
}

void
WorkloadKit::halt(unsigned ninsts)
{
    const BlockId b = newBlock(ninsts);
    builder_.halt(b);
}

void
WorkloadKit::setEntry(BlockId entry)
{
    builder_.setEntry(entry);
}

void
WorkloadKit::setPhaseLengths(std::vector<std::uint64_t> lengths)
{
    builder_.setPhaseLengths(std::move(lengths));
}

Program
WorkloadKit::build()
{
    RSEL_ASSERT(pendingJoins_.empty() && pendingSkips_.empty(),
                "unresolved joins at end of program");
    return builder_.build();
}

} // namespace rsel
