/**
 * @file
 * vortex: object-oriented database. Deep call chains through the
 * object-management layers (Mem, Chunk, Obj, Grp, Prim) with
 * validation diamonds at each layer, three transaction phases with
 * different operation mixes, and moderately biased branches
 * throughout. The layered calls create many related traces; in the
 * paper vortex is the one benchmark where combined NET's region
 * transitions rose slightly, because T_min pruning shortens the
 * selected paths.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildVortex(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "vortex", 5);

    // Layer 0: memory.
    const FuncId memGet = makeLeaf(kit, "Mem_GetWord", 4, false);
    KernelSpec pageSpec;
    pageSpec.bodyInsts = 4;
    pageSpec.tripMin = 2;
    pageSpec.tripMax = 6;
    pageSpec.biasedSkipProb = 0.85; // page resident?
    const FuncId pageIn = makeKernel(kit, "Mem_PageIn", pageSpec);

    // Layer 1: chunks.
    const FuncId chunkCheck = kit.beginFunction("Chunk_ChkGetChunk");
    {
        kit.call(2, memGet);
        kit.diamond(0.7, 2, 3, 3); // chunk status
        kit.callIf(0.9, 2, 2, pageIn);
        kit.ret(2);
    }

    // Layer 2: objects.
    const FuncId objValidate = kit.beginFunction("Obj_Validate");
    {
        kit.callFromTwoSites(0.15, 2, 2, chunkCheck);
        kit.ifThen(0.6, 2, 4);  // attribute check
        kit.ifThen(0.5, 2, 3);  // unbiased type check
        kit.ret(2);
    }

    KernelSpec fieldSpec;              // per-field copy loop
    fieldSpec.bodyInsts = 4;
    fieldSpec.tripMin = 4;
    fieldSpec.tripMax = 12;
    fieldSpec.callee = memGet;
    fieldSpec.biasedSkipProb = 0.9;
    const FuncId objCopy = makeKernel(kit, "Obj_CopyFields", fieldSpec);

    // Layer 3: groups.
    const FuncId grpEnter = kit.beginFunction("Grp_Enter");
    {
        kit.callFromTwoSites(0.15, 2, 2, objValidate);
        auto members = kit.loopBegin(4); // member-list walk
        kit.callFromTwoSites(0.15, 2, 2, memGet);
        kit.ifThen(0.8, 2, 2);
        kit.loopEnd(members, 2, 3, 9);
        kit.ret(2);
    }

    KernelSpec treeSpec;               // index-tree descent
    treeSpec.bodyInsts = 5;
    treeSpec.tripMin = 3;
    treeSpec.tripMax = 8;
    treeSpec.callee = chunkCheck;
    treeSpec.nestedInner = true;       // per-node key scan
    treeSpec.biasedSkipProb = 0.7;
    const FuncId treeWalk = makeKernel(kit, "Tree_Descend", treeSpec);

    // Layer 4: primitives (transactions).
    const FuncId primInsert = kit.beginFunction("Prim_Insert");
    {
        kit.call(3, grpEnter);
        kit.callFromTwoSites(0.15, 2, 2, objCopy);
        kit.diamond(0.55, 2, 4, 3);
        kit.callFromTwoSites(0.15, 2, 2, chunkCheck);
        kit.callIf(0.96, 2, 2, cold[0]);
        kit.ret(2);
    }

    const FuncId primLookup = kit.beginFunction("Prim_Lookup");
    {
        kit.callFromTwoSites(0.15, 2, 2, treeWalk);
        kit.call(2, objValidate);
        kit.ifThen(0.65, 2, 3);
        kit.ret(2);
    }

    const FuncId primDelete = kit.beginFunction("Prim_Delete");
    {
        kit.callFromTwoSites(0.15, 2, 2, primLookup);
        kit.callFromTwoSites(0.15, 2, 2, grpEnter);
        kit.diamond(0.5, 2, 3, 3);
        kit.callIf(0.9, 2, 2, objCopy);
        kit.callIf(0.97, 2, 2, cold[1]);
        kit.ret(2);
    }

    const FuncId primUpdate = kit.beginFunction("Prim_Update");
    {
        kit.callFromTwoSites(0.15, 2, 2, primLookup);
        kit.call(2, objCopy);
        kit.ifThen(0.7, 2, 4);
        kit.ret(2);
    }

    kit.beginFunction("main");
    {
        auto txns = kit.loopBegin(5);
        // Transaction mix shifts across the three phases.
        ProgramBuilder &b = kit.builder();
        const BlockId pick = kit.straight(3);
        const BlockId insSite = b.block(2);
        b.callTo(insSite, primInsert);
        const BlockId insDone = b.block(1);
        kit.joinNext(insDone);
        const BlockId lookSite = b.block(2);
        b.callTo(lookSite, primLookup);
        const BlockId lookDone = b.block(1);
        kit.joinNext(lookDone);
        const BlockId updSite = b.block(2);
        b.callTo(updSite, primUpdate);
        const BlockId updDone = b.block(1);
        kit.joinNext(updDone);
        const BlockId delSite = b.block(2);
        b.callTo(delSite, primDelete);
        IndirectBehavior ib;
        ib.targets = {insSite, lookSite, updSite, delSite};
        ib.weightsByPhase = {{6.0, 3.0, 2.0, 1.0},
                             {1.0, 8.0, 3.0, 1.0},
                             {2.0, 3.0, 3.0, 5.0}};
        b.indirectJump(pick, std::move(ib));
        // delSite's return continues into the join below.
        kit.callIf(0.95, 2, 2, cold[2]);
        kit.callIf(0.98, 2, 2, cold[3]);
        kit.callIf(0.99, 2, 2, cold[4]);
        kit.loopForever(txns, 3);
    }

    kit.setPhaseLengths({350'000, 350'000, 350'000});
    return kit.build();
}

} // namespace rsel
