/**
 * @file
 * The synthetic SPECint2000-like workload suite.
 *
 * The paper evaluates on the twelve SPECint2000 benchmarks run under
 * Pin. This reproduction substitutes twelve synthetic programs, one
 * per benchmark, whose control-flow character mimics the published
 * behaviour of the original (see DESIGN.md section 2 for the
 * substitution argument). Each is deterministic for a given seed.
 */

#ifndef RSEL_WORKLOADS_WORKLOADS_HPP
#define RSEL_WORKLOADS_WORKLOADS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hpp"

namespace rsel {

/** A named synthetic workload. */
struct WorkloadInfo
{
    /** SPECint2000-style name (e.g. "gzip"). */
    std::string name;
    /** One-line description of the modelled behaviour. */
    std::string description;
    /** Builder; deterministic for a given seed. */
    Program (*build)(std::uint64_t seed);
    /** Suggested dynamic length in block events. */
    std::uint64_t defaultEvents;
};

/** The full twelve-workload suite, in SPECint2000 order. */
const std::vector<WorkloadInfo> &workloadSuite();

/** Lookup by name; nullptr when unknown. */
const WorkloadInfo *findWorkload(const std::string &name);

/** All workload names, in suite order. */
std::vector<std::string> workloadNames();

// Individual builders (exposed for tests and examples).
Program buildGzip(std::uint64_t seed);
Program buildVpr(std::uint64_t seed);
Program buildGcc(std::uint64_t seed);
Program buildMcf(std::uint64_t seed);
Program buildCrafty(std::uint64_t seed);
Program buildParser(std::uint64_t seed);
Program buildEon(std::uint64_t seed);
Program buildPerlbmk(std::uint64_t seed);
Program buildGap(std::uint64_t seed);
Program buildVortex(std::uint64_t seed);
Program buildBzip2(std::uint64_t seed);
Program buildTwolf(std::uint64_t seed);

} // namespace rsel

#endif // RSEL_WORKLOADS_WORKLOADS_HPP
