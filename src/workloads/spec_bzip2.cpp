/**
 * @file
 * bzip2: block-sorting compression. Execution concentrates in the
 * Burrows-Wheeler sort — whose comparison loop exits on nearly
 * unbiased data-dependent branches — plus move-to-front, run-length
 * and Huffman coding loops. Few functions, very hot cycles: like
 * gzip it has a small cover set, and in the paper it is the
 * benchmark whose LEI cover set is already so small that
 * combination helps LEI less than NET (the only such case in
 * Figure 17).
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildBzip2(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "bzip2", 3);

    KernelSpec cmpSpec;                // suffix comparison
    cmpSpec.bodyInsts = 4;
    cmpSpec.tripMin = 2;
    cmpSpec.tripMax = 10;
    cmpSpec.unbiasedProb = 0.5;        // bytes differ -> direction
    cmpSpec.biasedSkipProb = 0.0;
    const FuncId fullGtU = makeKernel(kit, "fullGtU", cmpSpec);

    const FuncId simpleSort = kit.beginFunction("simpleSort");
    {
        auto outer = kit.loopBegin(4); // insertion-sort outer
        auto inner = kit.loopBegin(3); // shift loop
        kit.call(2, fullGtU);          // comparison call on path
        kit.ifThen(0.5, 2, 2);         // swap or stop
        kit.loopEnd(inner, 2, 2, 8);
        kit.loopEnd(outer, 2, 10, 30);
        kit.ret(2);
    }

    KernelSpec radixSpec;              // radix bucket counting
    radixSpec.bodyInsts = 4;
    radixSpec.tripMin = 80;
    radixSpec.tripMax = 180;
    radixSpec.biasedSkipProb = 0.96;
    const FuncId radixPass = makeKernel(kit, "radix_pass", radixSpec);

    KernelSpec mtfSpec;                // move-to-front list scan
    mtfSpec.bodyInsts = 4;
    mtfSpec.tripMin = 2;
    mtfSpec.tripMax = 12;
    mtfSpec.biasedSkipProb = 0.85;     // run-length special case
    const FuncId mtfScan = makeKernel(kit, "mtf_scan", mtfSpec);

    const FuncId generateMTF = kit.beginFunction("generateMTFValues");
    {
        auto syms = kit.loopBegin(4);  // per symbol
        kit.callFromTwoSites(0.15, 2, 2, mtfScan);
        kit.ifThen(0.8, 2, 3);
        kit.loopEnd(syms, 2, 60, 160);
        kit.ret(2);
    }

    KernelSpec huffCostSpec;           // per-group cost computation
    huffCostSpec.bodyInsts = 4;
    huffCostSpec.tripMin = 20;
    huffCostSpec.tripMax = 50;
    huffCostSpec.biasedSkipProb = 0.9;
    const FuncId huffCost = makeKernel(kit, "huff_cost", huffCostSpec);

    const FuncId sendMTF = kit.beginFunction("sendMTFValues");
    {
        auto groups = kit.loopBegin(4);
        kit.callFromTwoSites(0.15, 2, 2, huffCost);
        kit.ifThen(0.7, 2, 2);
        kit.loopEnd(groups, 2, 4, 8);
        auto emit = kit.loopBegin(3);  // bit emission
        kit.loopEnd(emit, 2, 30, 80);
        kit.ret(2);
    }

    kit.beginFunction("main");
    {
        auto blocks = kit.loopBegin(5); // per 900k block
        kit.callFromTwoSites(0.15, 2, 2, radixPass);
        auto buckets = kit.loopBegin(4);
        kit.call(2, simpleSort);
        kit.loopEnd(buckets, 2, 15, 40);
        kit.callFromTwoSites(0.15, 2, 2, generateMTF);
        kit.callFromTwoSites(0.15, 2, 2, sendMTF);
        kit.callIf(0.95, 2, 2, cold[0]);
        kit.callIf(0.97, 2, 2, cold[1]);
        kit.callIf(0.99, 2, 2, cold[2]);
        kit.loopForever(blocks, 3);
    }

    return kit.build();
}

} // namespace rsel
