/**
 * @file
 * mcf: network-simplex minimum-cost flow. Nearly all execution in a
 * few giant pointer-chasing kernels — arc pricing, basis-tree
 * update, flow refresh — each a long loop with a call on its
 * dominant path. Very small cover sets. In the paper mcf shows the
 * largest hit-rate drop under LEI (99.80% -> 98.31%): cycle-based
 * counting delays selection of the few giant loops that dominate.
 */

#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

Program
buildMcf(std::uint64_t seed)
{
    WorkloadKit kit(seed);

    const auto cold = makeColdPeriphery(kit, "mcf", 3);
    const FuncId redCost = makeLeaf(kit, "bea_compute_red_cost", 5, false);
    const FuncId basketLeaf = makeLeaf(kit, "insert_basket", 4, false);

    KernelSpec priceSpec;              // the arc-pricing scan
    priceSpec.bodyInsts = 4;
    priceSpec.tripMin = 150;
    priceSpec.tripMax = 400;
    priceSpec.biasedSkipProb = 0.88;   // arc enters the basket?
    priceSpec.callee = redCost;        // dominant-path call
    const FuncId priceArcs = makeKernel(kit, "price_out_impl", priceSpec);

    KernelSpec sortSpec;               // basket selection sort
    sortSpec.bodyInsts = 4;
    sortSpec.tripMin = 10;
    sortSpec.tripMax = 30;
    sortSpec.biasedSkipProb = 0.55;    // comparison outcome
    sortSpec.callee = basketLeaf;
    sortSpec.calleeSkipProb = 0.6;
    const FuncId sortBasket = makeKernel(kit, "sort_basket", sortSpec);

    KernelSpec treeUpSpec;             // walk toward the tree root
    treeUpSpec.bodyInsts = 5;
    treeUpSpec.tripMin = 10;
    treeUpSpec.tripMax = 40;
    treeUpSpec.unbiasedProb = 0.5;     // which subtree flips
    treeUpSpec.biasedSkipProb = 0.0;
    const FuncId updateTree = makeKernel(kit, "update_tree", treeUpSpec);

    KernelSpec flowSpec;               // flow push along the cycle
    flowSpec.bodyInsts = 4;
    flowSpec.tripMin = 15;
    flowSpec.tripMax = 45;
    flowSpec.biasedSkipProb = 0.93;
    const FuncId pushFlow = makeKernel(kit, "primal_update_flow", flowSpec);

    KernelSpec feasSpec;               // dual feasibility recheck
    feasSpec.bodyInsts = 4;
    feasSpec.tripMin = 60;
    feasSpec.tripMax = 120;
    feasSpec.biasedSkipProb = 0.96;
    feasSpec.rareCallee = cold[0];
    const FuncId dualFeasible = makeKernel(kit, "dual_feasible", feasSpec);

    KernelSpec potentialSpec;          // node-potential refresh
    potentialSpec.bodyInsts = 4;
    potentialSpec.tripMin = 50;
    potentialSpec.tripMax = 110;
    potentialSpec.nestedInner = true;  // per-subtree inner walk
    potentialSpec.biasedSkipProb = 0.94;
    const FuncId refreshPotential =
        makeKernel(kit, "refresh_potential", potentialSpec);

    kit.beginFunction("main");
    {
        auto simplex = kit.loopBegin(5); // major iterations
        kit.call(3, priceArcs);
        kit.callFromTwoSites(0.15, 2, 2, sortBasket);
        kit.diamond(0.75, 3, 4, 3);      // entering arc found?
        kit.callFromTwoSites(0.15, 2, 3, updateTree);
        kit.callFromTwoSites(0.15, 2, 2, pushFlow);
        kit.callIf(0.9, 2, 2, dualFeasible);
        kit.callIf(0.85, 2, 2, refreshPotential);
        kit.callIf(0.98, 2, 2, cold[1]);
        kit.callIf(0.99, 2, 2, cold[2]);
        kit.loopForever(simplex, 3);
    }

    return kit.build();
}

} // namespace rsel
